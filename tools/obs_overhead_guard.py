#!/usr/bin/env python3
"""Verify that *disabled* metrics add <2% overhead to the hot paths.

The observability layer (``repro.obs``) promises a near-zero cost when
metrics are off: instrumented code pays one ``obs.enabled()`` branch
per *batch* operation.  This guard measures that promise directly on
the two hottest instrumented paths:

* ``GilbertModel.losses`` — per-batch channel sampling — against a
  re-implementation of the *same body* with only the ``obs`` branch
  elided;
* ``repro.accel.burst_runs`` — the dispatched, instrumented kernel —
  against an identically-shaped dispatch function without the branch.

The baselines deliberately mirror the instrumented code line for line
(same attribute lookups, same call shape) so the measured delta is the
instrumentation alone, not incidental micro-optimizations.

Each arm is timed interleaved, ``--repeats`` times, and the *minimum*
times are compared (minima are robust to scheduler noise).  Exit code
is non-zero when the instrumented arm is more than ``--threshold``
(default 0.02 = 2%) slower than the uninstrumented arm.

Run from the repository root::

    PYTHONPATH=src python tools/obs_overhead_guard.py
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import accel, obs  # noqa: E402
from repro.accel import _backend  # noqa: E402
from repro.network.markov import BAD, GOOD, GilbertModel  # noqa: E402


def _plain_losses(model: GilbertModel, count: int) -> list:
    """``GilbertModel.losses`` with the ``obs`` branch removed, nothing else."""
    draws = [model._rng.random() for _ in range(count)]
    states = accel.gilbert_states(
        draws, model.p_good, model.p_bad, start_bad=model._state == BAD
    )
    if states:
        model._state = BAD if states[-1] else GOOD
    return states


def _plain_burst_runs(order, burst):
    """``repro.accel.burst_runs`` dispatch with the ``obs`` branch removed."""
    return _backend().burst_runs(order, burst)


def _best_of(repeats: int, instrumented, baseline) -> tuple:
    """(min instrumented, min baseline) over interleaved repetitions."""
    best_instr = float("inf")
    best_base = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        instrumented()
        best_instr = min(best_instr, time.perf_counter() - start)
        start = time.perf_counter()
        baseline()
        best_base = min(best_base, time.perf_counter() - start)
    return best_instr, best_base


def guard_gilbert(batch: int, repeats: int) -> tuple:
    """Instrumented GilbertModel.losses vs the same body, uninstrumented."""
    instrumented_model = GilbertModel(p_good=0.92, p_bad=0.6, seed=1)
    baseline_model = GilbertModel(p_good=0.92, p_bad=0.6, seed=1)

    def instrumented() -> None:
        instrumented_model.losses(batch)

    def baseline() -> None:
        _plain_losses(baseline_model, batch)

    return _best_of(repeats, instrumented, baseline)


def guard_burst_runs(n: int, burst: int, calls: int, repeats: int) -> tuple:
    """Instrumented accel dispatch vs the same dispatch without the branch."""
    order = list(range(0, n, 2)) + list(range(1, n, 2))

    def instrumented() -> None:
        for _ in range(calls):
            accel.burst_runs(order, burst)

    def baseline() -> None:
        for _ in range(calls):
            _plain_burst_runs(order, burst)

    return _best_of(repeats, instrumented, baseline)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.02,
                        help="max tolerated overhead fraction (default 0.02)")
    parser.add_argument("--repeats", type=int, default=9,
                        help="interleaved repetitions per arm (default 9)")
    parser.add_argument("--batch", type=int, default=200_000,
                        help="Gilbert batch size per measurement")
    parser.add_argument("--calls", type=int, default=2_000,
                        help="burst_runs calls per measurement")
    args = parser.parse_args(argv)

    obs.disable()
    checks = [
        ("GilbertModel.losses", *guard_gilbert(args.batch, args.repeats)),
        ("accel.burst_runs", *guard_burst_runs(48, 20, args.calls, args.repeats)),
    ]
    failures = 0
    print(f"disabled-metrics overhead guard (threshold {args.threshold:.1%})")
    for name, instr, base in checks:
        overhead = instr / base - 1.0 if base > 0 else 0.0
        verdict = "ok" if overhead <= args.threshold else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"  {name:24s} instrumented {instr * 1e3:8.2f} ms   "
            f"baseline {base * 1e3:8.2f} ms   overhead {overhead:+7.2%}   {verdict}"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
