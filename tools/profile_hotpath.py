#!/usr/bin/env python3
"""Profile the protocol hot path: one Figure-8 panel under cProfile.

Runs :func:`repro.experiments.figure8.run_figure8` on the paper's top
panel (100 buffer windows, both arms), writes the full cumulative-time
listing to ``benchmarks/results/PROFILE_<rev>.txt`` and prints the top
of it, so "where did the time go" for the session engine is one
``make profile`` away.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT_DIR = REPO_ROOT / "benchmarks" / "results"


def git_short_rev() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "local"
    return completed.stdout.strip() or "local"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=DEFAULT_OUT_DIR,
        help="where PROFILE_<rev>.txt lands (default benchmarks/results)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="rows of the cumulative listing to print (default 25)",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments.config import FIGURE8_TOP
    from repro.experiments.figure8 import run_figure8

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_figure8(FIGURE8_TOP)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats()
    listing = buffer.getvalue()

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.out_dir / f"PROFILE_{git_short_rev()}.txt"
    out_path.write_text(listing)

    shown = 0
    for line in listing.splitlines():
        print(line)
        if line.strip() and line.lstrip()[0].isdigit():
            shown += 1
            if shown >= args.top:
                break
    try:
        rel = out_path.relative_to(REPO_ROOT)
    except ValueError:
        rel = out_path
    print(f"\nfull listing: {rel}")
    print(
        f"panel sanity: scrambled mean CLF {result.scrambled.mean_clf:.2f} "
        f"vs unscrambled {result.unscrambled.mean_clf:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
