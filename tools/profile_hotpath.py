#!/usr/bin/env python3
"""Profile a repro hot path under cProfile.

Three targets:

* ``--target figure8`` (default) runs
  :func:`repro.experiments.figure8.run_figure8` on the paper's top
  panel (100 buffer windows, both arms) — the single-session protocol
  engine.
* ``--target serve`` runs the window-batched serving fast path
  (:mod:`repro.serve.fastpath`) on the K = 16 capacity-sweep fleet the
  serve benchmarks time, with caches pre-warmed so the listing shows
  the steady-state engine, not one-off plan searches.
* ``--target kernel`` runs the same fast path on the K = 256
  steady-state fleet the kernel benchmark gates at 10x — wide enough
  that the fused tier's per-window cohort work dominates the listing.
* ``--target hierarchy`` runs the two-level fan-out
  (:mod:`repro.serve.hierarchy`) on a K = 1024, 32-shard plan with
  ``jobs=1`` so the shard workers execute in-process and the listing
  covers both sides of the split; the sanity line reports the
  coordinator-vs-worker wall breakdown from ``performance_dict()``.

Writes the full cumulative-time listing to
``benchmarks/results/PROFILE_<rev>[_<target>].txt`` and prints the top
of it, so "where did the time go" is one ``make profile`` (or
``make profile-serve``) away.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT_DIR = REPO_ROOT / "benchmarks" / "results"


def git_short_rev() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "local"
    return completed.stdout.strip() or "local"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=DEFAULT_OUT_DIR,
        help="where PROFILE_<rev>.txt lands (default benchmarks/results)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="rows of the cumulative listing to print (default 25)",
    )
    parser.add_argument(
        "--target",
        choices=("figure8", "serve", "kernel", "hierarchy"),
        default="figure8",
        help="hot path to profile: the Figure-8 session engine, the "
        "window-batched serving fast path, the K = 256 fused-kernel "
        "steady state, or the K = 1024 hierarchical fan-out "
        "(default figure8)",
    )
    parser.add_argument(
        "--tier",
        default=None,
        help="kernel tier to profile under (reference, fused, native or "
        "auto); default: the session's resolved tier (REPRO_KERNEL)",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core import kernel as repro_kernel

    if args.tier is not None:
        repro_kernel.set_tier(args.tier)
    if args.target == "hierarchy":
        from repro.serve import LoadSpec, generate_requests, serve_sessions
        from repro.serve.hierarchy import plan_hierarchy, run_hierarchy

        spec = LoadSpec(
            sessions=1024,
            seed=3,
            gop_count=8,
            max_windows=4,
            mean_interarrival=1e-4,
        )
        capacity_bps = 20e6
        # Warm the permutation, stream and demand caches so the profile
        # shows the steady-state fan-out, not one-off plan searches.
        serve_sessions(generate_requests(spec), capacity_bps, fast=True)
        plan = plan_hierarchy(spec, capacity_bps)

        def workload():
            # jobs=1 keeps the shard workers in-process so cProfile sees
            # both the coordinator and the worker hot path.
            return run_hierarchy(plan, jobs=1)

        def sanity(result):
            perf = result.performance_dict()
            return (
                f"fleet sanity: {result.admitted_count}/{result.sessions} "
                f"admitted over {plan.shards} shards; wall split "
                f"plan {perf['worker_plan_seconds']:.3f}s / "
                f"serve {perf['worker_serve_seconds']:.3f}s / "
                f"reduce {perf['worker_reduce_seconds']:.3f}s / "
                f"coordinator {perf['coordinator_seconds']:.3f}s "
                f"({perf['sessions_per_second']:,.0f} sessions/s)"
            )
    elif args.target in ("serve", "kernel"):
        from repro.serve import LoadSpec, generate_requests, serve_sessions

        if args.target == "kernel":
            from repro.core.protocol import ProtocolConfig

            spec = LoadSpec(
                sessions=256,
                seed=9,
                gop_count=24,
                max_windows=12,
                mean_interarrival=0.0,
                config=ProtocolConfig(p_good=0.995, p_bad=0.6),
            )
            capacity_bps = 1_200_000.0 * 256
        else:
            spec = LoadSpec(
                sessions=16,
                seed=5,
                gop_count=50,
                max_windows=50,
                mean_interarrival=0.0,
            )
            capacity_bps = 2_400_000.0 * 8
        # Warm the permutation, stream and demand caches so the profile
        # shows the steady-state engine.
        serve_sessions(generate_requests(spec), capacity_bps, fast=True)
        requests = generate_requests(spec)

        def workload():
            return serve_sessions(requests, capacity_bps, fast=True)

        def sanity(result):
            return (
                f"fleet sanity: {len(result.admitted)}/{spec.sessions} "
                f"admitted, mean CLF {result.mean_clf:.2f}"
            )
    else:
        from repro.experiments.config import FIGURE8_TOP
        from repro.experiments.figure8 import run_figure8

        def workload():
            return run_figure8(FIGURE8_TOP)

        def sanity(result):
            return (
                f"panel sanity: scrambled mean CLF "
                f"{result.scrambled.mean_clf:.2f} "
                f"vs unscrambled {result.unscrambled.mean_clf:.2f}"
            )

    profiler = cProfile.Profile()
    profiler.enable()
    result = workload()
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats()
    from repro import accel

    header = (
        f"# target={args.target} tier={repro_kernel.tier_name()} "
        f"backend={accel.backend_name()} rev={git_short_rev()}\n"
    )
    listing = header + buffer.getvalue()

    args.out_dir.mkdir(parents=True, exist_ok=True)
    suffix = "" if args.target == "figure8" else f"_{args.target}"
    if args.tier is not None:
        suffix += f"_{repro_kernel.tier_name()}"
    out_path = args.out_dir / f"PROFILE_{git_short_rev()}{suffix}.txt"
    out_path.write_text(listing)

    shown = 0
    for line in listing.splitlines():
        print(line)
        if line.strip() and line.lstrip()[0].isdigit():
            shown += 1
            if shown >= args.top:
                break
    try:
        rel = out_path.relative_to(REPO_ROOT)
    except ValueError:
        rel = out_path
    print(f"\nfull listing: {rel}")
    print(sanity(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
