"""Persistent permutation cache: disk hits, robustness, opt-out."""

from __future__ import annotations

import json

import pytest

from repro.core import cpo, permcache
from repro.core.cpo import _calculate_permutation, calculate_permutation


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private cache dir with all in-memory layers dropped."""
    cache_dir = tmp_path / "perm-cache"
    monkeypatch.setenv(permcache.ENV_CACHE_DIR, str(cache_dir))
    _calculate_permutation.cache_clear()
    permcache.clear_memory()
    yield cache_dir
    _calculate_permutation.cache_clear()
    permcache.clear_memory()


def _simulate_new_process():
    """Drop every in-memory cache layer, keeping only the disk file."""
    _calculate_permutation.cache_clear()
    permcache.clear_memory()


class TestDiskCache:
    def test_search_results_land_on_disk(self, fresh_cache):
        calculate_permutation(120, 70)
        data = json.loads((fresh_cache / "perms.json").read_text())
        assert data["revision"] == permcache.CACHE_REVISION
        assert any(key.startswith("window:120:70:") for key in data["entries"])

    def test_second_process_hits_disk_not_search(self, fresh_cache, monkeypatch):
        first = calculate_permutation(120, 70)
        _simulate_new_process()

        def _no_search(*args, **kwargs):
            raise AssertionError("search re-ran despite a disk cache hit")

        monkeypatch.setattr(cpo, "_search_permutation", _no_search)
        second = calculate_permutation(120, 70)
        assert second.order == first.order

    def test_fast_paths_skip_the_disk(self, fresh_cache):
        # b <= n//2 resolves analytically; nothing worth persisting.
        calculate_permutation(96, 40)
        assert not (fresh_cache / "perms.json").exists()

    def test_corrupt_file_is_ignored(self, fresh_cache):
        fresh_cache.mkdir(parents=True)
        (fresh_cache / "perms.json").write_text("{not json")
        perm = calculate_permutation(120, 70)
        assert sorted(perm.order) == list(range(120))

    def test_stale_revision_is_ignored(self, fresh_cache):
        first = calculate_permutation(120, 70)
        path = fresh_cache / "perms.json"
        data = json.loads(path.read_text())
        # A bogus order under an old revision must not be trusted.
        key = next(iter(data["entries"]))
        data["entries"][key] = list(range(120))
        data["revision"] = permcache.CACHE_REVISION - 1
        path.write_text(json.dumps(data))
        _simulate_new_process()
        assert calculate_permutation(120, 70).order == first.order

    def test_invalid_entry_falls_back_to_search(self, fresh_cache):
        first = calculate_permutation(120, 70)
        path = fresh_cache / "perms.json"
        data = json.loads(path.read_text())
        key = next(iter(data["entries"]))
        data["entries"][key] = [0] * 120  # not a permutation
        path.write_text(json.dumps(data))
        _simulate_new_process()
        assert calculate_permutation(120, 70).order == first.order

    def test_opt_out_env(self, fresh_cache, monkeypatch):
        monkeypatch.setenv(permcache.ENV_DISABLE, "off")
        calculate_permutation(120, 70)
        assert not (fresh_cache / "perms.json").exists()

    def test_store_merges_with_existing_entries(self, fresh_cache):
        permcache.store("window", 4, 3, "normal", 0, [0, 2, 1, 3])
        permcache.store("window", 6, 4, "normal", 0, [0, 3, 1, 4, 2, 5])
        assert permcache.load("window", 4, 3, "normal", 0) == [0, 2, 1, 3]
        assert permcache.load("window", 6, 4, "normal", 0) == [
            0, 3, 1, 4, 2, 5,
        ]

    def test_load_rejects_wrong_length(self, fresh_cache):
        permcache.store("window", 4, 3, "normal", 0, [0, 2, 1, 3])
        assert permcache.load("window", 5, 3, "normal", 0) is None


class TestEviction:
    def test_bound_evicts_oldest_first(self, fresh_cache, monkeypatch):
        monkeypatch.setenv(permcache.ENV_MAX_ENTRIES, "2")
        permcache.store("window", 3, 2, "normal", 0, [0, 2, 1])
        permcache.store("window", 3, 2, "normal", 1, [1, 0, 2])
        permcache.store("window", 3, 2, "normal", 2, [2, 1, 0])
        assert permcache.load("window", 3, 2, "normal", 0) is None
        assert permcache.load("window", 3, 2, "normal", 1) == [1, 0, 2]
        assert permcache.load("window", 3, 2, "normal", 2) == [2, 1, 0]

    def test_restore_refreshes_entry_age(self, fresh_cache, monkeypatch):
        monkeypatch.setenv(permcache.ENV_MAX_ENTRIES, "2")
        permcache.store("window", 3, 2, "normal", 0, [0, 2, 1])
        permcache.store("window", 3, 2, "normal", 1, [1, 0, 2])
        # Re-storing seed 0 makes it the newest entry, so seed 1 is the
        # one the next store pushes out.
        permcache.store("window", 3, 2, "normal", 0, [0, 2, 1])
        permcache.store("window", 3, 2, "normal", 2, [2, 1, 0])
        assert permcache.load("window", 3, 2, "normal", 0) == [0, 2, 1]
        assert permcache.load("window", 3, 2, "normal", 1) is None

    def test_eviction_counter(self, fresh_cache, monkeypatch):
        from repro import obs

        monkeypatch.setenv(permcache.ENV_MAX_ENTRIES, "1")
        registry = obs.enable()
        obs.reset()
        try:
            permcache.store("window", 3, 2, "normal", 0, [0, 2, 1])
            permcache.store("window", 3, 2, "normal", 1, [1, 0, 2])
        finally:
            obs.disable()
        assert registry.snapshot()["counters"]["permcache.evictions"] == 1

    def test_non_positive_bound_is_unlimited(self, fresh_cache, monkeypatch):
        monkeypatch.setenv(permcache.ENV_MAX_ENTRIES, "0")
        for seed in range(8):
            permcache.store("window", 3, 2, "normal", seed, [0, 2, 1])
        for seed in range(8):
            assert permcache.load("window", 3, 2, "normal", seed) == [0, 2, 1]

    def test_unparsable_bound_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(permcache.ENV_MAX_ENTRIES, "lots")
        assert permcache.max_entries() == permcache.DEFAULT_MAX_ENTRIES
