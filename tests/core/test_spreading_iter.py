"""Tests for the lazy spreading iterators (repro.core.spreading)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spreading import spread_iter, spread_stream, unspread_iter
from repro.errors import ConfigurationError


class TestSpreadIter:
    def test_matches_batch_version(self):
        items = list(range(37))
        lazy = list(spread_iter(iter(items), window=10, burst=4))
        batch = spread_stream(items, 10, 4)
        assert lazy == batch

    def test_roundtrip(self):
        items = [f"f{i}" for i in range(23)]
        sent = spread_iter(iter(items), window=8, burst=3)
        back = list(unspread_iter(sent, window=8, burst=3))
        assert back == items

    def test_truly_lazy(self):
        """The generator must not consume beyond the finished windows."""

        def counting():
            for i in range(100):
                consumed.append(i)
                yield i

        consumed = []
        gen = spread_iter(counting(), window=10, burst=4)
        first_window = [next(gen) for _ in range(10)]
        assert sorted(first_window) == list(range(10))
        assert len(consumed) <= 11  # one window plus at most one lookahead

    def test_empty(self):
        assert list(spread_iter(iter([]), window=5, burst=2)) == []

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            list(spread_iter(iter([1]), window=0, burst=1))
        with pytest.raises(ConfigurationError):
            list(unspread_iter(iter([1]), window=0, burst=1))

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, count, window, burst):
        items = list(range(count))
        sent = spread_iter(iter(items), window=window, burst=burst)
        back = list(unspread_iter(sent, window=window, burst=burst))
        assert back == items
