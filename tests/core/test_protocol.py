"""Tests for the adaptive transmission protocol (repro.core.protocol)."""

from __future__ import annotations

import pytest

from repro.core.protocol import (
    ProtocolConfig,
    ProtocolSession,
    compare_schemes,
    run_session,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.media.gop import GOP_12
from repro.media.stream import make_independent_stream, make_video_stream


def lossless_config(**overrides) -> ProtocolConfig:
    base = dict(
        p_good=1.0,
        p_bad=0.0,
        lossy_feedback=False,
        seed=1,
    )
    base.update(overrides)
    return ProtocolConfig(**base)


@pytest.fixture(scope="module")
def stream():
    return make_video_stream(GOP_12, gop_count=12)


class TestConfig:
    def test_window_frames(self):
        assert ProtocolConfig(gops_per_window=2, gop_size=12).window_frames == 24

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(gops_per_window=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(rtt=-1)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(packet_size_bytes=0)

    def test_empty_stream_rejected(self):
        import pytest

        from repro.media.stream import MediaStream

        with pytest.raises(ProtocolError):
            ProtocolSession(MediaStream(ldus=()), ProtocolConfig())


class TestLosslessChannel:
    def test_no_losses_no_clf(self, stream):
        result = run_session(stream, lossless_config())
        assert result.mean_clf == 0.0
        assert all(w.clf == 0 for w in result.windows)
        assert all(w.unit_losses == 0 for w in result.windows)

    def test_all_frames_received(self, stream):
        result = run_session(stream, lossless_config())
        for window in result.windows:
            assert len(window.received) == window.frames
            assert len(window.decodable) == window.frames

    def test_unscrambled_also_clean(self, stream):
        config = lossless_config(layered=False, scramble=False)
        result = run_session(stream, config)
        assert result.mean_clf == 0.0

    def test_acks_flow(self, stream):
        result = run_session(stream, lossless_config())
        assert result.acks_sent == len(result.windows)
        assert result.acks_lost == 0


class TestAccounting:
    def test_sent_plus_dropped_equals_frames(self, stream):
        config = ProtocolConfig(p_bad=0.6, seed=3)
        result = run_session(stream, config)
        for window in result.windows:
            assert window.sent + window.dropped_at_sender == window.frames

    def test_transmission_order_is_permutation(self, stream):
        result = run_session(stream, ProtocolConfig(seed=3))
        for window in result.windows:
            assert sorted(window.transmission_order) == list(range(window.frames))

    def test_decodable_subset_of_received(self, stream):
        result = run_session(stream, ProtocolConfig(p_bad=0.6, seed=3))
        for window in result.windows:
            assert window.decodable <= window.received

    def test_max_windows_respected(self, stream):
        result = run_session(stream, ProtocolConfig(seed=3), max_windows=3)
        assert len(result.windows) == 3

    def test_deterministic_given_seed(self, stream):
        a = run_session(stream, ProtocolConfig(p_bad=0.6, seed=9))
        b = run_session(stream, ProtocolConfig(p_bad=0.6, seed=9))
        assert a.series.clf_values == b.series.clf_values

    def test_different_seeds_differ(self, stream):
        a = run_session(stream, ProtocolConfig(p_bad=0.6, seed=9))
        b = run_session(stream, ProtocolConfig(p_bad=0.6, seed=10))
        assert a.series.clf_values != b.series.clf_values


class TestBandwidthPressure:
    def test_starved_sender_drops(self, stream):
        config = lossless_config(bandwidth_bps=300_000.0)
        result = run_session(stream, config)
        assert sum(w.dropped_at_sender for w in result.windows) > 0

    def test_layered_drops_b_frames_first(self, stream):
        config = lossless_config(bandwidth_bps=300_000.0)
        result = run_session(stream, config)
        for window in result.windows:
            if window.dropped_at_sender == 0:
                continue
            # anchors (layers 0..3) were all sent: the transmission order
            # puts them first and the budget covers at least them.
            anchor_offsets = {
                o for o in range(window.frames) if o % 12 in (0, 3, 6, 9)
            }
            assert anchor_offsets <= window.received | {
                o
                for o in anchor_offsets
                # lost in network is possible only with loss enabled
            }

    def test_generous_bandwidth_sends_all(self, stream):
        config = lossless_config(bandwidth_bps=50_000_000.0)
        result = run_session(stream, config)
        assert all(w.dropped_at_sender == 0 for w in result.windows)


class TestScrambledVsUnscrambled:
    def test_scrambled_wins_on_bursty_channel(self, stream):
        config = ProtocolConfig(p_bad=0.6, seed=21)
        scrambled, unscrambled = compare_schemes(stream, config)
        assert scrambled.mean_clf <= unscrambled.mean_clf

    def test_compare_uses_same_seed(self, stream):
        scrambled, unscrambled = compare_schemes(stream, ProtocolConfig(seed=5))
        assert scrambled.config.seed == unscrambled.config.seed
        assert scrambled.config.scramble and not unscrambled.config.scramble


class TestIndependentStreams:
    def test_mjpeg_stream_single_layer(self):
        stream = make_independent_stream(120, fps=30.0)
        config = lossless_config(gops_per_window=1, gop_size=24)
        result = run_session(stream, config)
        assert result.mean_clf == 0.0
        for window in result.windows:
            assert window.layer_sizes == {0: window.frames}

    def test_mjpeg_no_retransmissions(self):
        stream = make_independent_stream(120, fps=30.0)
        config = ProtocolConfig(
            gops_per_window=1, gop_size=24, p_bad=0.6, seed=2
        )
        result = run_session(stream, config)
        assert all(w.retransmissions == 0 for w in result.windows)


class TestFeedback:
    def test_stale_acks_ignored(self):
        from repro.network.feedback import Feedback, FeedbackCollector

        collector = FeedbackCollector()
        assert collector.offer(Feedback(sequence=2, window_index=2))
        assert not collector.offer(Feedback(sequence=1, window_index=1))
        assert collector.ignored_stale == 1
        assert collector.latest is not None
        assert collector.latest.sequence == 2

    def test_ack_loss_counted(self, stream):
        config = ProtocolConfig(p_bad=0.9, seed=4)
        result = run_session(stream, config)
        assert result.acks_sent == len(result.windows)
        assert result.acks_lost + result.acks_used <= result.acks_sent

    def test_adaptation_changes_permutation(self):
        """After heavy feedback, non-critical layer bounds move."""
        stream = make_video_stream(GOP_12, gop_count=12)
        config = ProtocolConfig(p_bad=0.6, seed=8)
        session = ProtocolSession(stream, config)
        session.run()
        estimators = session.controller.layers
        assert any(e.observations > 0 for e in estimators.values())
