"""Tests for Theorem 1 bounds (repro.core.bounds)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    clf_feasible,
    clf_lower_bound,
    max_burst_for_clf_one,
    max_tolerable_burst,
    optimal_clf,
    optimal_permutation,
    single_burst_lower_bound,
    theorem1_bracket,
)
from repro.core.evaluation import worst_case_clf
from repro.core.permutation import Permutation
from repro.errors import ConfigurationError


def brute_force_optimum(n: int, b: int) -> int:
    """Reference optimum over all n! permutations (tiny n only)."""
    best = n
    for order in itertools.permutations(range(n)):
        best = min(best, worst_case_clf(Permutation(order), b))
    return best


class TestLowerBound:
    def test_extremes(self):
        assert clf_lower_bound(10, 0) == 0
        assert clf_lower_bound(10, 10) == 10
        assert clf_lower_bound(10, 15) == 10
        assert clf_lower_bound(0, 3) == 0

    def test_clf_one_region(self):
        for n in range(2, 30):
            assert clf_lower_bound(n, n // 2) == 1

    def test_above_half_forces_two(self):
        for n in range(4, 30):
            assert clf_lower_bound(n, n // 2 + 1) >= 2

    def test_single_burst_bound_formula(self):
        assert single_burst_lower_bound(10, 8) == 3  # ceil(8/3)
        assert single_burst_lower_bound(17, 5) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            clf_lower_bound(-1, 2)
        with pytest.raises(ConfigurationError):
            clf_lower_bound(5, -2)

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=60))
    def test_bound_within_range(self, n, b):
        bound = clf_lower_bound(n, b)
        assert 0 <= bound <= n
        if 0 < b < n:
            assert bound >= 1


class TestAntibandwidth:
    def test_max_burst_for_clf_one(self):
        assert max_burst_for_clf_one(17) == 8
        assert max_burst_for_clf_one(24) == 12
        assert max_burst_for_clf_one(1) == 0

    def test_matches_brute_force_tiny(self):
        for n in range(2, 8):
            threshold = max_burst_for_clf_one(n)
            assert brute_force_optimum(n, threshold) == 1
            if threshold + 1 < n:
                assert brute_force_optimum(n, threshold + 1) >= 2


class TestOptimal:
    def test_matches_brute_force(self):
        for n in range(2, 8):
            for b in range(1, n + 1):
                assert optimal_clf(n, b) == brute_force_optimum(n, b), (n, b)

    def test_b_equals_n_minus_one_closed_form(self):
        for n in range(3, 14):
            assert optimal_clf(n, n - 1) == (n + 1) // 2

    def test_extremes(self):
        assert optimal_clf(5, 0) == 0
        assert optimal_clf(5, 5) == 5
        assert optimal_clf(0, 1) == 0

    def test_witness_achieves_reported_optimum(self):
        for n, b in [(9, 6), (10, 7), (11, 8), (12, 9)]:
            clf, order = optimal_permutation(n, b)
            assert worst_case_clf(Permutation(order), b) == clf
            assert clf == optimal_clf(n, b)

    def test_witness_extremes(self):
        assert optimal_permutation(0, 1) == (0, ())
        clf, order = optimal_permutation(4, 0)
        assert clf == 0 and sorted(order) == [0, 1, 2, 3]
        clf, order = optimal_permutation(3, 5)
        assert clf == 3


class TestFeasible:
    def test_trivial_cases(self):
        assert clf_feasible(5, 0, 1)
        assert clf_feasible(5, 3, 5)
        assert not clf_feasible(5, 5, 4)
        assert not clf_feasible(5, 3, 0)

    def test_clf_one_shortcut(self):
        assert clf_feasible(20, 10, 1)
        assert not clf_feasible(20, 11, 1)

    def test_monotone_in_c(self):
        for n in (6, 9):
            for b in range(1, n):
                feasible = [clf_feasible(n, b, c) for c in range(1, n + 1)]
                # Once feasible, stays feasible.
                assert feasible == sorted(feasible)


class TestBracketAndDual:
    def test_bracket_ordering(self):
        for n, b in [(17, 9), (24, 16), (48, 30)]:
            lower, upper = theorem1_bracket(n, b)
            assert lower <= upper

    def test_bracket_collapses_small(self):
        lower, upper = theorem1_bracket(10, 5)
        assert lower == upper == 1

    def test_max_tolerable_burst_exact(self):
        assert max_tolerable_burst(10, 1, exact=True) == 5
        b2 = max_tolerable_burst(10, 2, exact=True)
        assert optimal_clf(10, b2) <= 2
        assert optimal_clf(10, b2 + 1) > 2

    def test_max_tolerable_burst_constructive(self):
        b = max_tolerable_burst(24, 2)
        perm_ok = worst_case_clf(
            __import__("repro.core.cpo", fromlist=["calculate_permutation"]).calculate_permutation(24, b),
            b,
        )
        assert perm_ok <= 2

    def test_max_tolerable_trivia(self):
        assert max_tolerable_burst(10, 10) == 10
        assert max_tolerable_burst(10, 0) == 0
        assert max_tolerable_burst(0, 2) == 0
