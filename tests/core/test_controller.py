"""Tests for the perception-driven controller (repro.core.controller)."""

from __future__ import annotations

import pytest

from repro.core.controller import PerceptionController
from repro.core.evaluation import worst_case_clf
from repro.errors import ConfigurationError
from repro.metrics.perception import AUDIO_PROFILE, PerceptionProfile, VIDEO_PROFILE
from repro.network.markov import GilbertModel


def train(controller: PerceptionController, p_good: float, p_bad: float, windows=100):
    model = GilbertModel(p_good=p_good, p_bad=p_bad, seed=7)
    for _ in range(windows):
        controller.observe_window([1 if lost else 0 for lost in model.losses(100)])


class TestConstruction:
    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionController(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            PerceptionController(epsilon=1.0)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionController().decide(0)


class TestDecisions:
    def test_mild_channel_small_bound(self):
        controller = PerceptionController()
        train(controller, p_good=0.98, p_bad=0.3)
        decision = controller.decide(24)
        assert decision.burst_bound <= 4
        assert decision.meets_threshold
        assert decision.certified_clf <= VIDEO_PROFILE.clf_threshold
        assert decision.recommended_window is None

    def test_harsh_channel_bigger_bound(self):
        mild = PerceptionController()
        train(mild, p_good=0.98, p_bad=0.3)
        harsh = PerceptionController()
        train(harsh, p_good=0.9, p_bad=0.8)
        assert harsh.design_burst() > mild.design_burst()

    def test_decision_certificate_is_exact(self):
        controller = PerceptionController()
        train(controller, p_good=0.92, p_bad=0.6)
        decision = controller.decide(24)
        assert decision.certified_clf == worst_case_clf(
            decision.permutation, decision.burst_bound
        )

    def test_tiny_window_triggers_recommendation(self):
        controller = PerceptionController(
            profile=PerceptionProfile(name="strict", clf_threshold=1)
        )
        train(controller, p_good=0.85, p_bad=0.8)  # long bursts
        decision = controller.decide(6)
        if not decision.meets_threshold:
            assert decision.needs_bigger_buffer
            assert decision.recommended_window > 6

    def test_recommended_window_meets_threshold(self):
        controller = PerceptionController()
        burst = 9
        window = controller.recommend_window(burst)
        from repro.core.cpo import calculate_permutation

        perm = calculate_permutation(window, burst)
        assert worst_case_clf(perm, burst) <= VIDEO_PROFILE.clf_threshold
        # tighter than the CLF-1 safe point when the threshold allows
        assert window <= 2 * burst

    def test_recommend_window_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionController().recommend_window(0)

    def test_audio_profile_tolerates_more(self):
        video = PerceptionController(profile=VIDEO_PROFILE)
        audio = PerceptionController(profile=AUDIO_PROFILE)
        assert audio.recommend_window(9) <= video.recommend_window(9)


class TestAgainstEquationOne:
    def test_quantile_bound_is_more_stable(self):
        """Equation 1 chases the last observation; the quantile policy
        converges.  Under a stationary channel the quantile bound should
        settle to a constant while Eq. 1 keeps oscillating."""
        from repro.core.adaptation import LossEstimator
        from repro.network.estimation import loss_runs

        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=21)
        controller = PerceptionController()
        equation_one = LossEstimator(window=24, initial=6)
        quantile_bounds = []
        eq1_bounds = []
        for _ in range(200):
            indicator = [1 if lost else 0 for lost in model.losses(100)]
            controller.observe_window(indicator)
            runs = loss_runs(indicator)
            equation_one.update(max(runs) if runs else 0)
            quantile_bounds.append(controller.design_burst())
            eq1_bounds.append(equation_one.burst_bound)
        tail_q = quantile_bounds[-50:]
        tail_e = eq1_bounds[-50:]
        assert len(set(tail_q)) <= 2          # converged
        assert len(set(tail_e)) >= len(set(tail_q))
