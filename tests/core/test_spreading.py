"""Tests for the ErrorSpreader facade (repro.core.spreading)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spreading import ErrorSpreader, spread_stream, unspread_stream
from repro.errors import ConfigurationError


class TestErrorSpreader:
    def test_roundtrip(self):
        spreader = ErrorSpreader(10, 5)
        window = list(range(10))
        assert spreader.unscramble(spreader.scramble(window)) == window

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            ErrorSpreader(0, 1)
        with pytest.raises(ConfigurationError):
            ErrorSpreader(5, -1)

    def test_guaranteed_clf_one_for_half(self):
        assert ErrorSpreader(24, 12).guaranteed_clf == 1

    def test_clf_for_lost_slots(self):
        spreader = ErrorSpreader(10, 5)
        # a burst of 5 transmission slots never hits adjacent frames
        for start in range(6):
            assert spreader.clf_for_lost_slots(range(start, start + 5)) == 1

    def test_playback_losses_sorted(self):
        spreader = ErrorSpreader(10, 5)
        losses = spreader.playback_losses([0, 3, 1])
        assert losses == sorted(losses)

    def test_report_improvement(self):
        spreader = ErrorSpreader(17, 5)
        report = spreader.report(4, 5)
        assert report.clf_unscrambled == 5
        assert report.clf_scrambled == 1
        assert report.improvement == 4

    def test_report_clipped_burst(self):
        spreader = ErrorSpreader(10, 5)
        report = spreader.report(8, 5)
        assert report.clf_unscrambled == 2  # only two slots remain

    def test_report_invalid(self):
        with pytest.raises(ConfigurationError):
            ErrorSpreader(10, 5).report(-1, 2)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, b):
        spreader = ErrorSpreader(n, min(b, n))
        window = [f"f{i}" for i in range(n)]
        assert spreader.unscramble(spreader.scramble(window)) == window


class TestStreamHelpers:
    def test_roundtrip_exact_windows(self):
        items = list(range(40))
        assert unspread_stream(spread_stream(items, 10, 4), 10, 4) == items

    def test_roundtrip_partial_window(self):
        items = list(range(37))
        assert unspread_stream(spread_stream(items, 10, 4), 10, 4) == items

    def test_empty_stream(self):
        assert spread_stream([], 5, 2) == []

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            spread_stream([1, 2], 0, 1)
        with pytest.raises(ConfigurationError):
            unspread_stream([1, 2], 0, 1)

    def test_spread_actually_permutes(self):
        items = list(range(20))
        assert spread_stream(items, 20, 10) != items
