"""Property: ``SessionResult.stream_clf`` is the longest un-decodable
run over the *concatenated* per-window decodability strings.

Per-window CLF truncates loss runs at window boundaries; the
whole-stream figure must not — a burst covering the tail of one window
and the head of the next counts as one run.  The reference below scans
the concatenation directly, with no shared code with the implementation.
"""

from __future__ import annotations

from typing import List, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProtocolConfig, SessionResult, WindowResult
from repro.metrics.windows import WindowSeries


def _window(index: int, frames: int, decodable: Set[int]) -> WindowResult:
    longest = current = 0
    for offset in range(frames):
        current = 0 if offset in decodable else current + 1
        longest = max(longest, current)
    return WindowResult(
        index=index,
        frames=frames,
        transmission_order=tuple(range(frames)),
        decodable=decodable,
        clf=longest,
    )


def _session(windows: List[WindowResult]) -> SessionResult:
    return SessionResult(
        config=ProtocolConfig(), windows=windows, series=WindowSeries(label="t")
    )


def _reference_longest_run(windows: List[WindowResult]) -> int:
    """Longest 1-run of the concatenated loss indicator, scanned flat."""
    longest = current = 0
    for window in windows:
        for offset in range(window.frames):
            if offset in window.decodable:
                current = 0
            else:
                current += 1
                longest = max(longest, current)
    return longest


@st.composite
def window_lists(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    windows = []
    for index in range(count):
        frames = draw(st.integers(min_value=1, max_value=30))
        decodable = draw(
            st.sets(st.integers(min_value=0, max_value=frames - 1))
        )
        windows.append(_window(index, frames, decodable))
    return windows


class TestStreamClfProperty:
    @given(window_lists())
    @settings(max_examples=300, deadline=None)
    def test_equals_flat_scan_of_concatenation(self, windows):
        result = _session(windows)
        assert result.stream_clf == _reference_longest_run(windows)
        report = result.overall_report
        assert report.slots == sum(w.frames for w in windows)
        assert report.unit_losses == sum(
            w.frames - len(w.decodable & set(range(w.frames))) for w in windows
        )

    def test_run_spanning_a_window_boundary(self):
        """Two windows, each with per-window CLF 2, whose runs touch at
        the boundary: the stream CLF must see one run of 4."""
        first = _window(0, 4, decodable={0, 1})  # lost: 2, 3
        second = _window(1, 4, decodable={2, 3})  # lost: 0, 1
        result = _session([first, second])
        assert result.stream_clf == 4

    def test_run_spanning_three_windows(self):
        """A fully-lost middle window bridges its neighbours' edges."""
        windows = [
            _window(0, 3, decodable={0, 1}),  # lost tail: 1
            _window(1, 3, decodable=set()),  # lost: 3
            _window(2, 3, decodable={1, 2}),  # lost head: 1
        ]
        assert _session(windows).stream_clf == 5

    def test_stream_clf_at_least_any_window_clf(self):
        windows = [
            _window(0, 5, decodable={0, 4}),
            _window(1, 5, decodable={0, 1, 2, 3, 4}),
        ]
        result = _session(windows)
        assert result.stream_clf >= max(w.clf for w in result.windows)

    def test_clean_stream_is_zero(self):
        windows = [_window(0, 6, decodable=set(range(6)))]
        assert _session(windows).stream_clf == 0
