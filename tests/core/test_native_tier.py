"""The native kernel tier: fallbacks, tier plumbing and the loop pins.

The native tier's contract has three legs the parity batteries alone do
not cover:

* **Graceful degradation.**  ``REPRO_KERNEL=native`` on a box without
  numba (or without NumPy) must not crash: the step downgrades —
  warning once, bumping ``kernel.native.fallback`` — and still produces
  bit-for-bit fused results.
* **Tier plumbing.**  ``native`` is a first-class tier: it appears in
  ``available_tiers()``, round-trips through ``set_tier``, and rows
  stepped under it expose the same :class:`FleetState` columns as rows
  stepped under ``fused`` — a mixed-tier fleet snapshot must survive
  the shared-memory round trip unchanged.
* **The compiled loops.**  ``_mt_gilbert_fill_loop`` and
  ``_receiver_scan_loop`` are the source numba compiles; they are
  pinned here in pure Python against ``random.Random`` / the reference
  receiver so a drifted recurrence (or an operator-precedence slip in
  the layer-burst scan) fails loudly even where numba is absent.
"""

from __future__ import annotations

import random

import pytest

from repro import accel, obs
from repro.core import kernel
from repro.core.batch import run_sessions_batch
from repro.core.native import kernels, step
from repro.core.protocol import ProtocolConfig
from repro.media.gop import GopPattern
from repro.media.stream import make_video_stream

np = pytest.importorskip("numpy") if accel.backend_name() == "numpy" else None

SEEDS = (3, 5, 8, 13, 21, 34)
MAX_WINDOWS = 4


@pytest.fixture
def stream():
    return make_video_stream(GopPattern.parse("IBBP"), gop_count=8)


@pytest.fixture(autouse=True)
def _restore_tier():
    previous = kernel.tier_name()
    yield
    kernel.set_tier(previous)


def _canon(results):
    return [(result.windows, result.series) for result in results]


def _sweep(stream, config, tier):
    kernel.set_tier(tier)
    return run_sessions_batch(
        stream, config, seeds=list(SEEDS), max_windows=MAX_WINDOWS
    )


class TestTierPlumbing:
    def test_native_is_an_available_tier(self):
        assert kernel.NATIVE in kernel.available_tiers()

    def test_every_available_tier_round_trips_set_tier(self):
        for tier in kernel.available_tiers():
            assert kernel.set_tier(tier) == tier
            assert kernel.tier_name() == tier

    def test_auto_does_not_resolve_to_native(self):
        # ``auto`` stays on the fused tier: the native tier is an
        # explicit opt-in until its JIT rung is the proven default.
        assert kernel.set_tier(kernel.AUTO) == kernel.FUSED


@pytest.mark.skipif(np is None, reason="needs the NumPy accel backend")
class TestGracefulFallback:
    def test_no_numba_warns_counts_and_matches_fused(
        self, stream, monkeypatch
    ):
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5)
        expected = _sweep(stream, config, kernel.FUSED)

        monkeypatch.setattr(kernels, "numba_available", lambda: False)
        monkeypatch.setattr(
            kernels, "jit_status", lambda: "numba not importable (test)"
        )
        monkeypatch.setattr(step, "_warned", set())
        registry = obs.enable()
        obs.reset()
        try:
            with pytest.warns(RuntimeWarning, match="no-numba"):
                got = _sweep(stream, config, kernel.NATIVE)
            counters = registry.snapshot()["counters"]
        finally:
            obs.disable()
        assert _canon(got) == _canon(expected)
        assert counters["kernel.native.fallback"] >= 1

    def test_wide_window_downgrades_to_fused(self, stream, monkeypatch):
        # 6 GOPs of 12 frames = 72 > the 63-bit received mask.
        wide = make_video_stream(GopPattern.parse("IBBPBBPBBPBB"), gop_count=12)
        config = ProtocolConfig(gops_per_window=6, p_good=0.9, p_bad=0.5)
        expected = _sweep(wide, config, kernel.FUSED)
        monkeypatch.setattr(step, "_warned", set())
        with pytest.warns(RuntimeWarning, match="wide-window"):
            got = _sweep(wide, config, kernel.NATIVE)
        assert _canon(got) == _canon(expected)


class TestPureBackendFallback:
    @pytest.mark.skipif(
        accel.backend_name() == "numpy", reason="pure-backend leg"
    )
    def test_native_without_numpy_matches_fused(self, stream, monkeypatch):
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5)
        expected = _sweep(stream, config, kernel.FUSED)
        monkeypatch.setattr(step, "_warned", set())
        with pytest.warns(RuntimeWarning, match="pure-backend"):
            got = _sweep(stream, config, kernel.NATIVE)
        assert _canon(got) == _canon(expected)


@pytest.mark.skipif(np is None, reason="needs the NumPy accel backend")
class TestMixedTierFleetState:
    def test_mixed_tier_snapshot_round_trips_shared_memory(self, stream):
        """Rows stepped under different tiers share one column ABI."""
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5)
        windows = list(stream.windows(config.window_frames))[:MAX_WINDOWS]
        shapes: dict = {}
        infos = [
            kernel.WindowInfo(window, config, stream.fps, shapes)
            for window in windows
        ]
        control = kernel.CONTROL_PACKET_BYTES * 8.0 / config.bandwidth_bps

        def run_rows(tier):
            rows = [kernel.SessionRow(config, seed) for seed in SEEDS]
            for index, info in enumerate(infos):
                kernel.step_window(
                    rows,
                    info,
                    config,
                    stream.fps,
                    index,
                    control_serialization=control,
                    tier=tier,
                )
            return rows

        native_rows = run_rows(kernel.NATIVE)
        fused_rows = run_rows(kernel.FUSED)

        # The numeric column surface is tier-invariant: the same seeds
        # stepped under either tier snapshot to identical columns.
        assert (
            kernel.FleetState.from_rows(native_rows).as_dict()
            == kernel.FleetState.from_rows(fused_rows).as_dict()
        )

        # And a *mixed* fleet — half native-stepped, half fused-stepped
        # — survives the shared-memory round trip unchanged.
        mixed = kernel.FleetState.from_rows(native_rows[:3] + fused_rows[3:])
        handle = mixed.to_shared()
        try:
            copied = handle.open()
        finally:
            handle.unlink()
        assert copied == mixed


@pytest.mark.skipif(np is None, reason="needs the NumPy accel backend")
class TestLoopPins:
    """Pure-Python pins of the loops numba compiles."""

    def _transplant(self, rng):
        _, py_state, _ = rng.getstate()
        key = np.array(py_state[:-1], dtype=np.int64)
        return key, py_state[-1]

    @pytest.mark.parametrize("seed", [0, 7, 4242])
    @pytest.mark.parametrize("warmup", [0, 1, 623])
    def test_mt_gilbert_fill_matches_random_random(self, seed, warmup):
        """The fused draw+scan equals random.Random bit for bit.

        ``warmup`` positions the word index right before the twist
        boundary (623 words in: the two tempered words of one double
        straddle the regeneration), the historical footgun of inlined
        MT19937.
        """
        count = 700  # crosses at least one twist boundary
        p_good, p_bad = 0.9, 0.55
        reference = random.Random(seed)
        for _ in range(warmup):
            reference.random()
        mirror = random.Random(seed)
        mirror.setstate(reference.getstate())

        key, pos = self._transplant(reference)
        keys = key.reshape(1, -1).copy()
        poss = np.array([pos], dtype=np.int64)
        bads = np.array([1 if seed % 2 else 0], dtype=np.int64)
        out = np.zeros((1, count), dtype=np.bool_)
        kernels._mt_gilbert_fill_loop(keys, poss, bads, p_good, p_bad, out)

        from repro.accel.pure import gilbert_states

        draws = [mirror.random() for _ in range(count)]
        expected = gilbert_states(draws, p_good, p_bad, bool(seed % 2))
        assert out[0].tolist() == expected
        assert bool(bads[0]) == expected[-1]

        # The advanced key/pos state transplants back losslessly: the
        # restored generator continues exactly where the mirror is.
        restored = random.Random()
        restored.setstate(
            (3, tuple(int(word) for word in keys[0]) + (int(poss[0]),), None)
        )
        assert [restored.random() for _ in range(5)] == [
            mirror.random() for _ in range(5)
        ]

    def test_receiver_scan_drives_step_native_to_fused_parity(
        self, stream, monkeypatch
    ):
        """The interpreted JIT-rung loops reproduce the fused receiver.

        Binding ``_mt_gilbert_fill_loop`` / ``_receiver_scan_loop`` in
        place of the compiled kernels exercises the exact code numba
        would compile — mirror-flag slicing, the int64 need-masks, the
        layer-burst scan — against the fused tier, on a lossy layered
        config where every scan output feeds back into the plan.
        """
        config = ProtocolConfig(gop_size=4, p_good=0.8, p_bad=0.45)
        expected = _sweep(stream, config, kernel.FUSED)
        monkeypatch.setattr(
            kernels, "mt_gilbert_fill", kernels._mt_gilbert_fill_loop
        )
        monkeypatch.setattr(
            kernels, "receiver_scan", kernels._receiver_scan_loop
        )
        got = _sweep(stream, config, kernel.NATIVE)
        assert _canon(got) == _canon(expected)
