"""The unified columnar window-step kernel (repro.core.kernel).

The kernel is the single engine behind ``run_session``,
``core.batch`` and ``serve.fastpath``; its contract is bit-for-bit
equality with the object engine on every tier and accel backend.  The
properties here drive :func:`repro.core.kernel.step_window` directly —
one step must equal one :class:`ProtocolSession` window — including the
degenerate rows the fused tier must not collapse incorrectly: zero
effective share and boundary-exact admission budgets.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.core import kernel
from repro.core.protocol import ProtocolConfig, ProtocolSession
from repro.errors import ConfigurationError
from repro.media.gop import GopPattern
from repro.media.ldu import FrameType, Ldu
from repro.media.stream import MediaStream, make_video_stream

SMALL_PATTERN = GopPattern.parse("IBBP")


@pytest.fixture(scope="module")
def small_stream():
    return make_video_stream(SMALL_PATTERN, gop_count=6)


@pytest.fixture(autouse=True)
def _restore_tier():
    previous = kernel.tier_name()
    yield
    kernel.set_tier(previous)


@st.composite
def kernel_configs(draw):
    """Randomized configs spanning every branch the kernel mirrors."""
    layered = draw(st.booleans())
    return ProtocolConfig(
        gops_per_window=draw(st.integers(min_value=1, max_value=2)),
        gop_size=4,
        p_good=draw(st.floats(min_value=0.5, max_value=1.0, allow_nan=False)),
        p_bad=draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False)),
        layered=layered,
        scramble=layered and draw(st.booleans()),
        retransmit_anchors=draw(st.booleans()),
        lossy_feedback=draw(st.booleans()),
        closed_gops=draw(st.booleans()),
        burst_policy=draw(st.sampled_from(["equation1", "quantile"])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


def _drive_kernel(stream, config, max_windows, tier=None):
    """Step one row through ``max_windows`` via the public kernel API."""
    windows = list(stream.windows(config.window_frames))[:max_windows]
    shapes = {}
    infos = [
        kernel.WindowInfo(window, config, stream.fps, shapes)
        for window in windows
    ]
    row = kernel.SessionRow(config, config.seed)
    control = kernel.CONTROL_PACKET_BYTES * 8.0 / config.bandwidth_bps
    for index, info in enumerate(infos):
        kernel.step_window(
            [row],
            info,
            config,
            stream.fps,
            index,
            control_serialization=control,
            tier=tier,
        )
    return row.result


class TestStepWindowParity:
    @given(kernel_configs())
    @settings(max_examples=25, deadline=None)
    def test_steps_equal_session_windows(self, small_stream, config):
        expected = ProtocolSession(small_stream, config).run(max_windows=3)
        for tier in kernel.available_tiers():
            actual = _drive_kernel(small_stream, config, 3, tier=tier)
            assert actual == expected, f"tier {tier!r} diverged"

    def test_parity_on_every_backend(self, small_stream):
        config = ProtocolConfig(gop_size=4, seed=11)
        previous = accel.backend_name()
        try:
            for name in accel.available_backends():
                accel.set_backend(name)
                expected = ProtocolSession(small_stream, config).run(
                    max_windows=3
                )
                for tier in kernel.available_tiers():
                    actual = _drive_kernel(small_stream, config, 3, tier=tier)
                    assert actual == expected, (
                        f"backend {name!r} tier {tier!r} diverged"
                    )
        finally:
            accel.set_backend(previous)

    def test_mixed_seed_fleet_matches_solo_rows(self, small_stream):
        """A fleet stepping in lockstep equals each row run alone."""
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5, seed=0)
        windows = list(stream_windows(small_stream, config))[:3]
        shapes = {}
        infos = [
            kernel.WindowInfo(window, config, small_stream.fps, shapes)
            for window in windows
        ]
        control = kernel.CONTROL_PACKET_BYTES * 8.0 / config.bandwidth_bps
        rows = [kernel.SessionRow(config, seed) for seed in (3, 7, 19)]
        for index, info in enumerate(infos):
            kernel.step_window(
                rows,
                info,
                config,
                small_stream.fps,
                index,
                control_serialization=control,
            )
        for row, seed in zip(rows, (3, 7, 19)):
            solo = ProtocolSession(
                small_stream, replace(config, seed=seed)
            ).run(max_windows=3)
            assert row.result == solo

    def test_zero_share_row(self, small_stream):
        """A starved row (1 bps) sheds every frame at the sender."""
        config = ProtocolConfig(gop_size=4, bandwidth_bps=1.0, seed=5)
        expected = ProtocolSession(small_stream, config).run(max_windows=2)
        for tier in kernel.available_tiers():
            actual = _drive_kernel(small_stream, config, 2, tier=tier)
            assert actual == expected
            assert actual.windows[0].sent == 0
            assert actual.windows[0].dropped_at_sender == len(
                actual.windows[0].transmission_order
            )

    def test_boundary_exact_admission(self):
        """Frames whose serialization lands exactly on the window end.

        With dyadic frame times (1/32 s at 32 fps) the last frame of
        every window completes exactly at the cycle boundary — the
        strict ``>`` budget must admit it, on both tiers, and the link
        must end the window exactly busy until the boundary.
        """
        frames = 4
        stream = MediaStream(
            ldus=tuple(
                Ldu(index=i, frame_type=FrameType.X, size_bits=8192)
                for i in range(frames * 4)
            ),
            fps=32.0,
        )
        config = ProtocolConfig(
            gops_per_window=1,
            gop_size=frames,
            bandwidth_bps=262144.0,  # 8192 bits -> exactly 1/32 s
            p_good=1.0,
            p_bad=0.0,
            seed=1,
        )
        expected = ProtocolSession(stream, config).run(max_windows=4)
        for tier in kernel.available_tiers():
            actual = _drive_kernel(stream, config, 4, tier=tier)
            assert actual == expected
            for window in actual.windows:
                assert window.sent == frames
                assert window.dropped_at_sender == 0

    def test_run_session_routes_through_kernel(self, small_stream):
        from repro.core.protocol import run_session

        config = ProtocolConfig(gop_size=4, seed=9)
        assert run_session(small_stream, config, max_windows=3) == (
            ProtocolSession(small_stream, config).run(max_windows=3)
        )


def stream_windows(stream, config):
    return stream.windows(config.window_frames)


class TestTierSelection:
    def test_available_tiers(self):
        assert kernel.REFERENCE in kernel.available_tiers()
        assert kernel.FUSED in kernel.available_tiers()

    def test_set_tier_resolves_auto_to_fused(self):
        assert kernel.set_tier(kernel.AUTO) == kernel.FUSED
        assert kernel.tier_name() == kernel.FUSED

    def test_set_tier_reference(self):
        assert kernel.set_tier(kernel.REFERENCE) == kernel.REFERENCE
        assert kernel.tier_name() == kernel.REFERENCE

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel.set_tier("turbo")

    def test_env_selects_tier_at_import(self):
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["REPRO_KERNEL"] = "reference"
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        output = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core import kernel; print(kernel.tier_name())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert output.stdout.strip() == kernel.REFERENCE


class TestFleetState:
    def _fleet(self, small_stream):
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5, seed=0)
        windows = list(small_stream.windows(config.window_frames))[:2]
        shapes = {}
        control = kernel.CONTROL_PACKET_BYTES * 8.0 / config.bandwidth_bps
        rows = [kernel.SessionRow(config, seed) for seed in (1, 2, 3)]
        for index, window in enumerate(windows):
            info = kernel.WindowInfo(window, config, small_stream.fps, shapes)
            kernel.step_window(
                rows,
                info,
                config,
                small_stream.fps,
                index,
                control_serialization=control,
            )
        return rows

    def test_shared_memory_round_trip_is_exact(self, small_stream):
        rows = self._fleet(small_stream)
        state = kernel.FleetState.from_rows(rows)
        handle = state.to_shared()
        try:
            copied = handle.open()
        finally:
            handle.unlink()
        assert copied == state
        assert copied.column("fwd_busy") == [row.fwd_busy for row in rows]
        assert copied.column("ack_seq") == [float(row.ack_seq) for row in rows]

    def test_unlink_is_idempotent(self, small_stream):
        state = kernel.FleetState.from_rows(self._fleet(small_stream))
        handle = state.to_shared()
        handle.unlink()
        handle.unlink()  # second release must be a no-op

    def test_columns_cover_engine_state(self, small_stream):
        state = kernel.FleetState.from_rows(self._fleet(small_stream))
        assert state.names == kernel.ROW_COLUMNS
        as_dict = state.as_dict()
        assert set(as_dict) == set(kernel.ROW_COLUMNS)
        assert all(len(column) == state.rows for column in as_dict.values())

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel.FleetState({"a": [1.0, 2.0], "b": [1.0]})

    def test_empty_state_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel.FleetState({})
