"""Tests for the k-CPO constructions (repro.core.cpo)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import clf_lower_bound, optimal_clf
from repro.core.cpo import (
    EFFORT_FAST,
    EFFORT_NORMAL,
    block_interleaver,
    calculate_permutation,
    candidate_permutations,
    cpo_table_1_example,
    cyclic_stride,
    edge_ladder,
    even_odd_split,
)
from repro.core.evaluation import spread_table, worst_case_clf
from repro.core.permutation import Permutation
from repro.errors import ConfigurationError


class TestEvenOddSplit:
    @given(st.integers(min_value=2, max_value=200))
    def test_antibandwidth_optimal(self, n):
        perm = even_odd_split(n)
        assert min(spread_table(perm)) >= n // 2

    @given(st.integers(min_value=1, max_value=100))
    def test_is_permutation(self, n):
        perm = even_odd_split(n)
        assert sorted(perm.order) == list(range(n))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            even_odd_split(-1)

    def test_clf_one_up_to_half(self):
        for n in (7, 8, 17, 24):
            perm = even_odd_split(n)
            assert worst_case_clf(perm, n // 2) == 1


class TestBlockInterleaver:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
        st.booleans(),
    )
    def test_is_permutation(self, n, groups, alternate):
        groups = min(groups, n)
        perm = block_interleaver(n, groups, alternate=alternate)
        assert sorted(perm.order) == list(range(n))

    def test_groups_of_one_is_identity(self):
        assert block_interleaver(6, 1).is_identity

    def test_invalid_groups(self):
        with pytest.raises(ConfigurationError):
            block_interleaver(5, 6)
        with pytest.raises(ConfigurationError):
            block_interleaver(5, 0)

    def test_alternate_reverses_odd_groups(self):
        perm = block_interleaver(6, 2, alternate=True)
        # group 0 = evens ascending, group 1 = odds descending
        assert perm.order == (0, 2, 4, 5, 3, 1)


class TestEdgeLadder:
    def test_none_in_small_burst_regime(self):
        assert edge_ladder(10, 4) is None
        assert edge_ladder(10, 10) is None
        assert edge_ladder(0, 1) is None

    def test_b_equals_n_minus_1_is_optimal(self):
        for n in range(6, 40):
            perm = edge_ladder(n, n - 1)
            assert perm is not None
            assert worst_case_clf(perm, n - 1) == (n + 1) // 2

    @given(st.integers(min_value=8, max_value=80))
    @settings(max_examples=40)
    def test_within_one_of_pigeonhole(self, n):
        b = 3 * n // 4 + 1
        perm = edge_ladder(n, b)
        if perm is None:
            return
        survivors = n - b
        assert worst_case_clf(perm, b) <= -(-n // (survivors + 1))  # ceil

    @given(st.integers(min_value=4, max_value=80), st.integers(min_value=1, max_value=80))
    @settings(max_examples=60)
    def test_is_permutation_when_defined(self, n, b):
        perm = edge_ladder(n, min(b, n))
        if perm is not None:
            assert sorted(perm.order) == list(range(n))


class TestCalculatePermutation:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            calculate_permutation(-1, 2)
        with pytest.raises(ConfigurationError):
            calculate_permutation(5, -2)
        with pytest.raises(ConfigurationError):
            calculate_permutation(5, 2, effort="bogus")

    def test_empty_window(self):
        assert len(calculate_permutation(0, 3)) == 0

    def test_no_burst_identity(self):
        assert calculate_permutation(8, 0).is_identity

    def test_clf_one_guarantee(self):
        for n in (4, 9, 17, 24, 48):
            for b in (1, n // 4, n // 2):
                if b >= 1:
                    perm = calculate_permutation(n, b)
                    assert worst_case_clf(perm, b) == 1, (n, b)

    def test_matches_exhaustive_optimum_small(self):
        for n in range(2, 11):
            for b in range(1, n + 1):
                achieved = worst_case_clf(calculate_permutation(n, b), b)
                assert achieved == optimal_clf(n, b), (n, b)

    def test_within_one_of_lower_bound_medium(self):
        for n in (17, 24, 36):
            for b in range(n // 2 + 1, n):
                achieved = worst_case_clf(calculate_permutation(n, b, effort=EFFORT_FAST), b)
                assert achieved <= clf_lower_bound(n, b) + 2, (n, b)

    def test_deterministic(self):
        assert calculate_permutation(20, 13) == calculate_permutation(20, 13)

    def test_fast_effort_still_valid(self):
        perm = calculate_permutation(30, 20, effort=EFFORT_FAST)
        assert sorted(perm.order) == list(range(30))

    def test_burst_ge_n_still_spreads(self):
        perm = calculate_permutation(10, 12)
        assert worst_case_clf(perm, 5) == 1  # smaller real bursts benefit


class TestTable1:
    def test_paper_order(self):
        perm = cpo_table_1_example()
        one_based = [f + 1 for f in perm.order]
        assert one_based == [1, 6, 11, 16, 4, 9, 14, 2, 7, 12, 17, 5, 10, 15, 3, 8, 13]

    def test_paper_clf(self):
        assert worst_case_clf(cpo_table_1_example(), 5) == 1


class TestCandidates:
    def test_all_are_permutations(self):
        for perm in candidate_permutations(12, 7, effort=EFFORT_NORMAL):
            assert sorted(perm.order) == list(range(12))

    def test_fast_subset_small(self):
        fast = list(candidate_permutations(12, 7, effort=EFFORT_FAST))
        normal = list(candidate_permutations(12, 7, effort=EFFORT_NORMAL))
        assert len(fast) <= len(normal)

    def test_empty(self):
        assert list(candidate_permutations(0, 0)) == []

    def test_single(self):
        assert list(candidate_permutations(1, 1)) == [Permutation([0])]


class TestCyclicStride:
    def test_stride_requires_coprime(self):
        with pytest.raises(Exception):
            cyclic_stride(9, 3)

    def test_stride_order(self):
        assert cyclic_stride(5, 2).order == (0, 2, 4, 1, 3)


class TestSeedDiscipline:
    """Local-search randomness is private and reproducible per seed."""

    def test_same_seed_same_search_result(self):
        from repro.core.cpo import _search_permutation

        first = _search_permutation(48, 30, "normal", seed=3)
        second = _search_permutation(48, 30, "normal", seed=3)
        assert first.order == second.order

    def test_global_random_state_untouched(self):
        import random

        from repro.core.cpo import _calculate_permutation, _search_permutation

        random.seed(12345)
        before = random.getstate()
        _search_permutation(48, 30, "normal", seed=0)
        _calculate_permutation.cache_clear()
        calculate_permutation(120, 70)
        assert random.getstate() == before

    def test_distinct_seeds_may_differ_but_certify_equally(self):
        from repro.core.cpo import _search_permutation
        from repro.core.evaluation import worst_case_clf as wc

        a = _search_permutation(48, 30, "normal", seed=1)
        b = _search_permutation(48, 30, "normal", seed=2)
        # Both are valid; the certificate (worst CLF) must agree even if
        # the local search wandered to a different representative.
        assert wc(a, 30) == wc(b, 30)
