"""Tests for the batched Monte-Carlo session engine (repro.core.batch).

The engine's contract is bit-for-bit equality: running R replications
in lockstep must produce exactly the :class:`SessionResult` objects
that R sequential :func:`repro.core.protocol.run_session` calls would.
The property below drives that equality over randomized protocol
configurations on every available acceleration backend — this module
must keep passing with NumPy absent, so it never imports it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.core.batch import run_sessions_batch, summarize_replications
from repro.core.protocol import ProtocolConfig, ProtocolSession, run_session
from repro.errors import ConfigurationError, ProtocolError
from repro.media.gop import GOP_12, GopPattern
from repro.media.stream import MediaStream, make_video_stream

#: Small, fast stream for the property: 6 GOPs of 4 frames.
SMALL_PATTERN = GopPattern.parse("IBBP")


@pytest.fixture(scope="module")
def small_stream():
    return make_video_stream(SMALL_PATTERN, gop_count=6)


@pytest.fixture(scope="module")
def figure_stream():
    return make_video_stream(GOP_12, gop_count=8)


@st.composite
def protocol_configs(draw):
    """Randomized configs spanning every branch the batch engine mirrors."""
    layered = draw(st.booleans())
    return ProtocolConfig(
        gops_per_window=draw(st.integers(min_value=1, max_value=2)),
        gop_size=4,
        p_good=draw(st.floats(min_value=0.5, max_value=1.0, allow_nan=False)),
        p_bad=draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False)),
        layered=layered,
        # The sequential engine only scrambles layered windows; pairing
        # them matches how every experiment drives the protocol.
        scramble=layered and draw(st.booleans()),
        retransmit_anchors=draw(st.booleans()),
        lossy_feedback=draw(st.booleans()),
        closed_gops=draw(st.booleans()),
        burst_policy=draw(st.sampled_from(["equation1", "quantile"])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


def _sequential(stream, config, seeds, max_windows):
    # Anchor to the object engine directly: run_session itself routes
    # through the batch engine now, so comparing against it would be a
    # vacuous self-check.
    return [
        ProtocolSession(stream, replace(config, seed=seed)).run(
            max_windows=max_windows
        )
        for seed in seeds
    ]


def _assert_batch_matches(stream, config, seeds, max_windows):
    from repro.core import kernel

    previous = accel.backend_name()
    previous_tier = kernel.tier_name()
    try:
        for name in accel.available_backends():
            accel.set_backend(name)
            expected = _sequential(stream, config, seeds, max_windows)
            for tier in kernel.available_tiers():
                kernel.set_tier(tier)
                batched = run_sessions_batch(
                    stream, config, seeds=seeds, max_windows=max_windows
                )
                assert batched == expected, (
                    f"backend {name!r} tier {tier!r} diverged"
                )
    finally:
        accel.set_backend(previous)
        kernel.set_tier(previous_tier)


class TestBatchSequentialParity:
    @given(
        protocol_configs(),
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=3,
            unique=True,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_sequential(self, small_stream, config, seeds):
        _assert_batch_matches(small_stream, config, seeds, max_windows=3)

    def test_figure8_shape_parity(self, figure_stream):
        """Pinned check at the paper's window geometry (N = 24)."""
        config = ProtocolConfig(seed=2000)
        _assert_batch_matches(
            figure_stream, config, seeds=[2000, 2001, 2002], max_windows=4
        )

    def test_unscrambled_arm_parity(self, figure_stream):
        config = ProtocolConfig(layered=False, scramble=False, seed=2000)
        _assert_batch_matches(
            figure_stream, config, seeds=[2000, 2001], max_windows=4
        )

    def test_single_seed_matches_run_session(self, small_stream):
        config = ProtocolConfig(gop_size=4, seed=9)
        (batched,) = run_sessions_batch(small_stream, config, seeds=[9])
        assert batched == run_session(small_stream, replace(config, seed=9))

    def test_empty_seed_list(self, small_stream):
        assert run_sessions_batch(small_stream, seeds=[]) == []

    def test_empty_stream_rejected(self):
        with pytest.raises(ProtocolError):
            run_sessions_batch(MediaStream(ldus=()), seeds=[1])


class TestSummarizeReplications:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_replications([])

    def test_statistics_match_hand_computation(self, small_stream):
        config = ProtocolConfig(gop_size=4, seed=3)
        results = run_sessions_batch(
            small_stream, config, seeds=[3, 4, 5, 6], max_windows=3
        )
        summary = summarize_replications(results)
        assert summary.replications == 4
        means = [r.mean_clf for r in results]
        assert summary.mean_clf.mean == pytest.approx(sum(means) / 4)
        streams = [float(r.stream_clf) for r in results]
        assert summary.stream_clf.mean == pytest.approx(sum(streams) / 4)
        low, high = summary.mean_clf_ci
        assert low <= summary.mean_clf.mean <= high
        assert "replications" in summary.describe()

    def test_single_replication_has_degenerate_interval(self, small_stream):
        config = ProtocolConfig(gop_size=4, seed=3)
        results = run_sessions_batch(
            small_stream, config, seeds=[3], max_windows=2
        )
        summary = summarize_replications(results)
        assert summary.replications == 1
        low, high = summary.mean_clf_ci
        assert low == high == summary.mean_clf.mean
