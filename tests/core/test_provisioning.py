"""Tests for buffer provisioning (repro.core.provisioning)."""

from __future__ import annotations

import pytest

from repro.core.provisioning import (
    BufferPlan,
    burst_for_threshold,
    delay_tradeoff,
    max_window_for_delay,
    plan_for_stream,
)
from repro.errors import ConfigurationError
from repro.traces.synthetic import calibrated_stream


class TestBufferPlan:
    def test_paper_star_wars_numbers(self):
        """§4.1: largest GOP 932710 bits ~ 113 KB; 2-GOP buffer ~226 KB."""
        plan = BufferPlan(
            gops_per_window=2, gop_size=12, fps=24.0, max_gop_bits=932710
        )
        assert plan.window_frames == 24
        assert 113_000 < plan.buffer_bytes / 2 < 117_000
        assert 226_000 < plan.buffer_bytes < 234_000
        assert plan.startup_delay_seconds == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BufferPlan(0, 12, 24.0, 1000)
        with pytest.raises(ConfigurationError):
            BufferPlan(2, 0, 24.0, 1000)
        with pytest.raises(ConfigurationError):
            BufferPlan(2, 12, 0, 1000)
        with pytest.raises(ConfigurationError):
            BufferPlan(2, 12, 24.0, 0)

    def test_burst_tolerance(self):
        plan = BufferPlan(2, 12, 24.0, 1000)
        assert plan.tolerable_burst_at_clf_one() == 12

    def test_gops_per_second(self):
        plan = BufferPlan(2, 12, 24.0, 1000)
        assert plan.gops_per_second == pytest.approx(2.0)


class TestPlanForStream:
    def test_from_calibrated_stream(self):
        stream = calibrated_stream("star_wars", gop_count=10, seed=1)
        plan = plan_for_stream(stream, 2)
        assert plan.max_gop_bits == 932710
        assert plan.buffer_bytes == 2 * ((932710 + 7) // 8)


class TestDelayHelpers:
    def test_max_window_for_delay(self):
        # GOP 12 at 24 fps = 0.5 s per GOP
        assert max_window_for_delay(1.0, gop_size=12, fps=24.0) == 2
        assert max_window_for_delay(4.0, gop_size=12, fps=24.0) == 8
        assert max_window_for_delay(0.4, gop_size=12, fps=24.0) == 0

    def test_max_window_validation(self):
        with pytest.raises(ConfigurationError):
            max_window_for_delay(-1, gop_size=12, fps=24)
        with pytest.raises(ConfigurationError):
            max_window_for_delay(1, gop_size=0, fps=24)

    def test_delay_tradeoff_monotone(self):
        stream = calibrated_stream("star_wars", gop_count=10, seed=1)
        points = delay_tradeoff(stream, max_gops=6)
        assert len(points) == 6
        for a, b in zip(points, points[1:]):
            assert b.startup_delay_seconds > a.startup_delay_seconds
            assert b.buffer_bytes > a.buffer_bytes
            assert b.burst_at_clf_one >= a.burst_at_clf_one

    def test_doubling_window_doubles_tolerance(self):
        stream = calibrated_stream("star_wars", gop_count=10, seed=1)
        points = {p.gops_per_window: p for p in delay_tradeoff(stream, max_gops=8)}
        assert points[8].burst_at_clf_one == 4 * points[2].burst_at_clf_one

    def test_delay_tradeoff_validation(self):
        stream = calibrated_stream("star_wars", gop_count=4, seed=1)
        with pytest.raises(ConfigurationError):
            delay_tradeoff(stream, max_gops=0)


class TestBurstForThreshold:
    def test_small_window_exact(self):
        # n=10: CLF <= 2 tolerates b=7 (from the exhaustive table)
        assert burst_for_threshold(10, 2) == 7

    def test_threshold_one_is_antibandwidth(self):
        assert burst_for_threshold(24, 1) == 12

    def test_video_threshold_on_protocol_window(self):
        burst = burst_for_threshold(24, 2)
        # must be at least the CLF-1 point and below the window
        assert 12 <= burst < 24

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            burst_for_threshold(0, 2)
        with pytest.raises(ConfigurationError):
            burst_for_threshold(10, 0)
