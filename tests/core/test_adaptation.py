"""Tests for Equation 1 loss estimation (repro.core.adaptation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import AdaptiveController, LossEstimator
from repro.errors import ConfigurationError


class TestLossEstimator:
    def test_initial_default_is_half_window(self):
        estimator = LossEstimator(window=24)
        assert estimator.estimate == 12.0
        assert estimator.burst_bound == 12

    def test_initial_override(self):
        estimator = LossEstimator(window=24, initial=3)
        assert estimator.estimate == 3.0

    def test_initial_clamped_to_window(self):
        estimator = LossEstimator(window=10, initial=99)
        assert estimator.estimate == 10.0

    def test_equation_one(self):
        estimator = LossEstimator(window=24, initial=4)
        estimator.update(8)
        assert estimator.estimate == pytest.approx(0.5 * 8 + 0.5 * 4)

    def test_alpha_weighting(self):
        estimator = LossEstimator(window=100, alpha=0.25, initial=0)
        estimator.update(8)
        assert estimator.estimate == pytest.approx(2.0)

    def test_observation_clamped(self):
        estimator = LossEstimator(window=10, initial=0)
        estimator.update(50)
        assert estimator.estimate == pytest.approx(5.0)

    def test_burst_bound_at_least_one(self):
        estimator = LossEstimator(window=10, initial=0)
        assert estimator.burst_bound == 1

    def test_burst_bound_ceil(self):
        estimator = LossEstimator(window=10, initial=2.5)
        assert estimator.burst_bound == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LossEstimator(window=0)
        with pytest.raises(ConfigurationError):
            LossEstimator(window=5, alpha=1.5)
        with pytest.raises(ConfigurationError):
            LossEstimator(window=5, initial=-1)
        with pytest.raises(ConfigurationError):
            LossEstimator(window=5).update(-2)

    def test_counts_observations(self):
        estimator = LossEstimator(window=5)
        estimator.update(1)
        estimator.update(2)
        assert estimator.observations == 2

    @given(
        st.integers(min_value=2, max_value=100),
        st.lists(st.integers(min_value=0, max_value=100), max_size=30),
    )
    @settings(max_examples=60)
    def test_estimate_stays_in_range(self, window, observations):
        estimator = LossEstimator(window=window)
        for value in observations:
            estimator.update(value)
        assert 0.0 <= estimator.estimate <= window
        assert 1 <= estimator.burst_bound <= window

    def test_converges_to_constant_observation(self):
        estimator = LossEstimator(window=50, initial=25)
        for _ in range(30):
            estimator.update(4)
        assert estimator.estimate == pytest.approx(4.0, abs=1e-4)


class TestAdaptiveController:
    def test_creates_estimators_lazily(self):
        controller = AdaptiveController()
        assert controller.burst_bound(0, 16) == 8  # half-window default
        controller.observe(0, 16, 2)
        assert controller.burst_bound(0, 16) == 5  # ceil(0.5*2 + 0.5*8)

    def test_layers_independent(self):
        controller = AdaptiveController()
        controller.observe(0, 16, 0)
        controller.observe(1, 16, 16)
        assert controller.burst_bound(0, 16) < controller.burst_bound(1, 16)

    def test_window_change_resets(self):
        controller = AdaptiveController()
        controller.observe(0, 16, 0)
        assert controller.burst_bound(0, 8) == 4  # fresh estimator, new window

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveController(alpha=-0.1)

    def test_layers_snapshot(self):
        controller = AdaptiveController()
        controller.observe(2, 10, 3)
        assert 2 in controller.layers
