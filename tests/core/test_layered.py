"""Tests for the Layered Permutation Transmission Order (repro.core.layered)."""

from __future__ import annotations

import pytest

from repro.core.layered import LayeredScheduler
from repro.errors import ConfigurationError, PosetError
from repro.media.gop import GOP_12
from repro.poset.builders import independent_poset, mpeg_poset_for_pattern


@pytest.fixture(scope="module")
def two_gop_scheduler() -> LayeredScheduler:
    return LayeredScheduler(mpeg_poset_for_pattern(GOP_12, 2))


class TestLayers:
    def test_figure3_layering(self, two_gop_scheduler):
        layers = two_gop_scheduler.layers
        assert [layer.members for layer in layers] == [
            (0, 12),          # I frames of both GOPs
            (3, 15),          # first P of each GOP
            (6, 18),          # second P
            (9, 21),          # third P
            tuple(
                i for i in range(24) if i % 12 not in (0, 3, 6, 9)
            ),                # all B frames
        ]

    def test_critical_layers_are_anchor_layers(self, two_gop_scheduler):
        assert two_gop_scheduler.critical_indices() == [0, 1, 2, 3]
        assert not two_gop_scheduler.layers[4].critical

    def test_layer_count_is_longest_chain(self, two_gop_scheduler):
        assert two_gop_scheduler.layer_count == 5

    def test_independent_stream_single_layer(self):
        scheduler = LayeredScheduler(independent_poset(10))
        assert scheduler.layer_count == 1
        assert not scheduler.layers[0].critical

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            LayeredScheduler(independent_poset(0))


class TestPlan:
    def test_plan_covers_every_frame_once(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan()
        assert sorted(plan.order) == list(range(24))

    def test_critical_layers_transmitted_first(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan()
        critical_frames = {
            offset for layer in plan.critical for offset in layer.members
        }
        head = plan.order[: len(critical_frames)]
        assert set(head) == critical_frames

    def test_unscrambled_plan_is_layered_identity(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan(scramble=False)
        expected = []
        for layer in two_gop_scheduler.layers:
            expected.extend(layer.members)
        assert list(plan.order) == expected

    def test_scrambled_b_layer_spreads(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan({4: 8})
        b_layer = plan.layers[4]
        perm = plan.permutations[4]
        from repro.core.evaluation import worst_case_clf

        assert worst_case_clf(perm, 8) == 1

    def test_layer_of(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan()
        assert plan.layer_of(0) == 0
        assert plan.layer_of(3) == 1
        assert plan.layer_of(1) == 4
        with pytest.raises(ConfigurationError):
            plan.layer_of(99)

    def test_prefix_budget(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan()
        assert plan.prefix(8) == plan.order[:8]
        with pytest.raises(ConfigurationError):
            plan.prefix(-1)

    def test_bounds_clamped(self, two_gop_scheduler):
        plan = two_gop_scheduler.plan({4: 999})
        assert sorted(plan.order) == list(range(24))


class TestDecodable:
    def test_everything_received(self, two_gop_scheduler):
        assert two_gop_scheduler.decodable(range(24)) == list(range(24))

    def test_lost_I_wipes_gop(self, two_gop_scheduler):
        received = [i for i in range(24) if i != 0]
        decodable = two_gop_scheduler.decodable(received)
        # Frames of GOP 0 depend (transitively) on frame 0 — all dead
        # except those in GOP 1 and the B frames 10, 11 that bridge into
        # I12... which also need P9 (dead) so they die too.
        assert all(frame >= 12 for frame in decodable)

    def test_lost_B_hurts_only_itself(self, two_gop_scheduler):
        received = [i for i in range(24) if i != 1]
        decodable = two_gop_scheduler.decodable(received)
        assert decodable == [i for i in range(24) if i != 1]

    def test_lost_last_P_kills_dependents(self, two_gop_scheduler):
        received = [i for i in range(24) if i != 9]
        decodable = two_gop_scheduler.decodable(received)
        # P9's dependents: B7, B8 (between P6 and P9) and B10, B11
        # (between P9 and I12) — all four die with it.
        for dead in (7, 8, 9, 10, 11):
            assert dead not in decodable
        assert 6 in decodable  # P6 itself survives
        assert all(frame in decodable for frame in range(12, 24))

    def test_unknown_frame_rejected(self, two_gop_scheduler):
        with pytest.raises(PosetError):
            two_gop_scheduler.decodable([99])
