"""Property suite: the pure and NumPy kernels are bit-for-bit equal.

The acceleration backend's contract is strict equality, not numerical
closeness — permutations, codewords and loss patterns must be identical
whichever backend computed them.  These properties drive both backend
modules directly (no global backend switch needed) over random inputs,
plus a few tests of the selection machinery itself.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.accel import pure
from repro.errors import ConfigurationError, PermutationError

np_backend = pytest.importorskip(
    "repro.accel.np_backend", reason="NumPy backend not importable"
)


def orders(max_n: int = 24):
    """Random permutation orders of window sizes 1..max_n."""
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.permutations(list(range(n)))
    )


@st.composite
def order_and_burst(draw, max_n: int = 24):
    order = draw(orders(max_n))
    burst = draw(st.integers(min_value=0, max_value=len(order) + 2))
    return order, burst


class TestClfKernels:
    @given(order_and_burst())
    @settings(max_examples=200, deadline=None)
    def test_worst_clf_agrees(self, case):
        order, burst = case
        assert np_backend.worst_clf(order, burst) == pure.worst_clf(order, burst)

    @given(order_and_burst(max_n=16))
    @settings(max_examples=100, deadline=None)
    def test_burst_runs_agree(self, case):
        order, burst = case
        assert np_backend.burst_runs(order, burst) == pure.burst_runs(
            order, burst
        )

    @given(
        st.integers(min_value=1, max_value=12).flatmap(
            lambda n: st.tuples(
                st.lists(
                    st.permutations(list(range(n))), min_size=1, max_size=6
                ),
                st.integers(min_value=1, max_value=n),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_burst_runs_agree(self, case):
        candidates, burst = case
        assert np_backend.batch_burst_runs(
            candidates, burst
        ) == pure.batch_burst_runs(candidates, burst)

    def test_long_run_orders_hit_the_fallback_kernel(self):
        # The identity order has maximal runs, forcing the NumPy kernel
        # past its galloping limit into the sorted-window path.
        for n in (8, 17, 24, 40):
            order = list(range(n))
            for burst in (1, 2, n // 2, n - 1, n):
                assert np_backend.worst_clf(order, burst) == pure.worst_clf(
                    order, burst
                )


class TestScrambleKernels:
    @given(
        orders(16).flatmap(
            lambda order: st.tuples(
                st.just(order),
                st.lists(
                    st.one_of(st.integers(), st.text(max_size=3)),
                    min_size=len(order),
                    max_size=len(order),
                ),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scramble_round_trips_on_both_backends(self, case):
        order, window = case
        for backend in (pure, np_backend):
            transmitted = backend.permute(order, window)
            assert backend.unpermute(order, transmitted) == list(window)
        assert np_backend.permute(order, window) == pure.permute(order, window)

    def test_length_mismatch_raises_on_both(self):
        for backend in (pure, np_backend):
            with pytest.raises(PermutationError):
                backend.permute([0, 1, 2], ["a", "b"])
            with pytest.raises(PermutationError):
                backend.unpermute([0, 1, 2], ["a", "b"])


class TestGfKernels:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_gf_matmul_agrees(self, data):
        rows = data.draw(st.integers(min_value=1, max_value=5))
        cols = data.draw(st.integers(min_value=1, max_value=5))
        length = data.draw(st.integers(min_value=1, max_value=16))
        matrix = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=255),
                    min_size=cols,
                    max_size=cols,
                ),
                min_size=rows,
                max_size=rows,
            )
        )
        blocks = data.draw(
            st.lists(
                st.binary(min_size=length, max_size=length),
                min_size=cols,
                max_size=cols,
            )
        )
        assert np_backend.gf_matmul_bytes(
            matrix, blocks
        ) == pure.gf_matmul_bytes(matrix, blocks)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_reed_solomon_erasure_recovery_per_backend(self, data):
        from repro.protocols.fec import ReedSolomonErasure

        k = data.draw(st.integers(min_value=1, max_value=6))
        r = data.draw(st.integers(min_value=1, max_value=4))
        length = data.draw(st.integers(min_value=1, max_value=12))
        blocks = data.draw(
            st.lists(
                st.binary(min_size=length, max_size=length),
                min_size=k,
                max_size=k,
            )
        )
        erased = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=k - 1),
                max_size=min(k, r),
                unique=True,
            )
        )
        code = ReedSolomonErasure(k, r)
        previous = accel.backend_name()
        outcomes = {}
        try:
            for name in accel.available_backends():
                accel.set_backend(name)
                parities = code.encode(blocks)
                damaged = [
                    None if i in erased else block
                    for i, block in enumerate(blocks)
                ]
                outcomes[name] = (parities, code.decode(damaged, parities))
        finally:
            accel.set_backend(previous)
        for parities, decoded in outcomes.values():
            assert decoded == list(blocks)
        assert len(set(outcomes[n][0][0] if outcomes[n][0] else b"" for n in outcomes)) == 1


class TestGilbertKernel:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=64,
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_gilbert_states_agree(self, draws, p_good, p_bad, start_bad):
        import numpy as np

        expected = pure.gilbert_states(draws, p_good, p_bad, start_bad)
        # Array input exercises the vectorized scan; list input the
        # delegation path — both must match the reference exactly.
        as_array = np.asarray(draws, dtype=np.float64)
        assert np_backend.gilbert_states(
            as_array, p_good, p_bad, start_bad
        ) == expected
        assert np_backend.gilbert_states(
            draws, p_good, p_bad, start_bad
        ) == expected

    def test_same_seed_same_pattern_across_backends(self):
        from repro.network.markov import GilbertModel

        previous = accel.backend_name()
        patterns = {}
        try:
            for name in accel.available_backends():
                accel.set_backend(name)
                model = GilbertModel(p_good=0.92, p_bad=0.6, seed=11)
                patterns[name] = model.losses(500)
        finally:
            accel.set_backend(previous)
        assert len(set(map(tuple, patterns.values()))) == 1


class TestBatchKernels:
    """The replication-sweep kernels behind ``repro.core.batch``."""

    @given(
        st.integers(min_value=1, max_value=8).flatmap(
            lambda cols: st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=1),
                    min_size=cols,
                    max_size=cols,
                ),
                max_size=6,
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_worst_clf_agrees_small(self, indicators):
        expected = pure.batch_worst_clf(indicators)
        assert np_backend.batch_worst_clf(indicators) == expected
        assert expected == [
            max(pure.loss_run_lengths(row), default=0) for row in indicators
        ]

    def test_batch_worst_clf_large_hits_vectorized_path(self):
        import random

        rng = random.Random(7)
        # 8 x 600 = 4800 elements: past the _SMALL_BATCH delegation
        # cutoff, so the array kernel itself is under test.
        indicators = [
            [rng.randint(0, 1) for _ in range(600)] for _ in range(8)
        ]
        expected = pure.batch_worst_clf(indicators)
        assert np_backend.batch_worst_clf(indicators) == expected
        assert expected == [
            max(pure.loss_run_lengths(row), default=0) for row in indicators
        ]

    def test_batch_worst_clf_ragged_and_empty(self):
        ragged = [[1, 0, 1, 1], [1] * 2000, [0] * 2000]
        assert np_backend.batch_worst_clf(ragged) == pure.batch_worst_clf(
            ragged
        ) == [2, 2000, 0]
        for backend in (pure, np_backend):
            assert backend.batch_worst_clf([]) == []
            assert backend.batch_worst_clf([[] for _ in range(3)]) == [0, 0, 0]

    @given(st.lists(st.booleans(), max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_loss_run_lengths_agree(self, states):
        expected = pure.loss_run_lengths(states)
        assert np_backend.loss_run_lengths(states) == expected
        assert sum(expected) == sum(states)

    def test_loss_run_lengths_large(self):
        import random

        rng = random.Random(11)
        states = [rng.random() < 0.4 for _ in range(5000)]
        assert np_backend.loss_run_lengths(states) == pure.loss_run_lengths(
            states
        )
        for backend in (pure, np_backend):
            assert backend.loss_run_lengths([]) == []
            assert backend.loss_run_lengths([True] * 9) == [9]

    @given(
        st.integers(min_value=0, max_value=16).flatmap(
            lambda cols: st.tuples(
                st.lists(
                    st.lists(
                        st.floats(
                            min_value=0.0, max_value=1.0, allow_nan=False
                        ),
                        min_size=cols,
                        max_size=cols,
                    ),
                    max_size=5,
                ),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            )
        ),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_gilbert_states_batch_agrees_small(self, case, data):
        draws, p_good, p_bad = case
        start_bad = data.draw(
            st.lists(
                st.booleans(), min_size=len(draws), max_size=len(draws)
            )
        )
        expected = pure.gilbert_states_batch(draws, p_good, p_bad, start_bad)
        assert (
            np_backend.gilbert_states_batch(draws, p_good, p_bad, start_bad)
            == expected
        )
        # The batch is definitionally independent rows of the scalar scan.
        assert expected == [
            pure.gilbert_states(row, p_good, p_bad, flag)
            for row, flag in zip(draws, start_bad)
        ]

    def test_gilbert_states_batch_large_hits_vectorized_path(self):
        import random

        rng = random.Random(13)
        draws = [[rng.random() for _ in range(700)] for _ in range(8)]
        start_bad = [r % 2 == 0 for r in range(8)]
        expected = pure.gilbert_states_batch(draws, 0.92, 0.6, start_bad)
        assert (
            np_backend.gilbert_states_batch(draws, 0.92, 0.6, start_bad)
            == expected
        )

    def test_gilbert_states_batch_ragged_falls_back(self):
        draws = [[0.5] * 3000, [0.1] * 2999]
        start_bad = [False, True]
        assert np_backend.gilbert_states_batch(
            draws, 0.92, 0.6, start_bad
        ) == pure.gilbert_states_batch(draws, 0.92, 0.6, start_bad)

    def test_gilbert_states_batch_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            accel.gilbert_states_batch([[0.5], [0.5]], 0.9, 0.6, [False])


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        previous = accel.backend_name()
        yield
        accel.set_backend(previous)

    def test_set_backend_pure(self):
        assert accel.set_backend("pure") == "pure"
        assert accel.backend_name() == "pure"

    def test_set_backend_numpy(self):
        assert accel.set_backend("numpy") == "numpy"
        assert accel.backend_name() == "numpy"

    def test_auto_prefers_numpy_here(self):
        assert accel.set_backend("auto") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            accel.set_backend("cuda")

    def test_available_backends(self):
        assert accel.available_backends() == ["pure", "numpy"]
        assert accel.numpy_available()

    def test_env_var_honored_in_subprocess(self):
        import subprocess
        import sys

        script = (
            "from repro import accel; print(accel.backend_name())"
        )
        for env_value, expected in (("pure", "pure"), ("numpy", "numpy")):
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**__import__("os").environ, "REPRO_BACKEND": env_value},
            )
            assert completed.returncode == 0, completed.stderr
            assert completed.stdout.strip() == expected

    def test_dispatch_switches_with_backend(self):
        order = list(range(9, -1, -1))
        accel.set_backend("pure")
        pure_result = accel.worst_clf(order, 4)
        accel.set_backend("numpy")
        assert accel.worst_clf(order, 4) == pure_result


def test_search_parity_spot_check():
    """End-to-end: the k-CPO search returns the same permutation."""
    from repro.core.cpo import _search_permutation

    cases = [(17, 9), (24, 13), (33, 20)]
    previous = accel.backend_name()
    try:
        results = {}
        for name in accel.available_backends():
            accel.set_backend(name)
            results[name] = [
                _search_permutation(n, b, "fast", 0) for n, b in cases
            ]
    finally:
        accel.set_backend(previous)
    assert results["pure"] == results["numpy"]
