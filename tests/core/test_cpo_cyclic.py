"""Tests for the cyclic (straddling-burst) permutation variant."""

from __future__ import annotations

import pytest

from repro.core.cpo import calculate_permutation, calculate_permutation_cyclic
from repro.core.evaluation import cyclic_worst_case_clf, worst_case_clf
from repro.errors import ConfigurationError


class TestCyclicSelection:
    def test_is_permutation(self):
        for n, b in [(10, 5), (17, 9), (24, 12), (24, 18)]:
            perm = calculate_permutation_cyclic(n, b)
            assert sorted(perm.order) == list(range(n))

    def test_never_worse_than_window_variant_cyclically(self):
        for n, b in [(12, 6), (17, 8), (24, 12), (24, 16), (30, 20)]:
            cyclic = calculate_permutation_cyclic(n, b)
            window = calculate_permutation(n, b)
            assert cyclic_worst_case_clf(cyclic, b) <= cyclic_worst_case_clf(
                window, b
            ), (n, b)

    def test_cyclic_at_least_window_wc(self):
        perm = calculate_permutation_cyclic(20, 10)
        assert cyclic_worst_case_clf(perm, 10) >= worst_case_clf(perm, 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            calculate_permutation_cyclic(-1, 3)
        with pytest.raises(ConfigurationError):
            calculate_permutation_cyclic(5, 2, effort="bogus")

    def test_edge_cases(self):
        assert len(calculate_permutation_cyclic(0, 3)) == 0
        assert calculate_permutation_cyclic(6, 0).is_identity

    def test_deterministic(self):
        assert calculate_permutation_cyclic(18, 9) == calculate_permutation_cyclic(18, 9)

    def test_straddling_guarantee_reasonable(self):
        """For b <= n/2, the cyclic variant should keep straddling CLF
        small (<= 2: a boundary can join at most two length-1 runs)."""
        for n in (12, 20, 24):
            b = n // 2
            perm = calculate_permutation_cyclic(n, b)
            assert cyclic_worst_case_clf(perm, b) <= 2
