"""Tests for the analytical CLF models (repro.core.analysis)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    ClfDistribution,
    exact_inorder_clf_distribution,
    forecast_spreading,
    monte_carlo_clf_distribution,
)
from repro.core.cpo import calculate_permutation
from repro.core.permutation import Permutation
from repro.errors import ConfigurationError


class TestDistributionType:
    def test_mean_and_deviation(self):
        dist = ClfDistribution(window=2, pmf=(0.25, 0.5, 0.25))
        assert dist.mean == pytest.approx(1.0)
        assert dist.deviation == pytest.approx(math.sqrt(0.5))

    def test_cdf_and_tail(self):
        dist = ClfDistribution(window=2, pmf=(0.25, 0.5, 0.25))
        assert dist.probability_at_most(1) == pytest.approx(0.75)
        assert dist.tail(1) == pytest.approx(0.25)
        assert dist.probability_at_most(-5) == 0.0
        assert dist.probability_at_most(99) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClfDistribution(window=2, pmf=(1.0,))
        with pytest.raises(ConfigurationError):
            ClfDistribution(window=1, pmf=(0.7, 0.7))


class TestExactInorder:
    def test_lossless_channel(self):
        dist = exact_inorder_clf_distribution(10, 1.0, 0.0)
        assert dist.pmf[0] == pytest.approx(1.0)
        assert dist.mean == 0.0

    def test_dead_channel(self):
        dist = exact_inorder_clf_distribution(5, 0.0, 1.0)
        assert dist.pmf[5] == pytest.approx(1.0)

    def test_single_packet(self):
        dist = exact_inorder_clf_distribution(1, 0.9, 0.5)
        assert dist.pmf[0] == pytest.approx(0.9)
        assert dist.pmf[1] == pytest.approx(0.1)

    def test_two_packets_by_hand(self):
        p_good, p_bad = 0.8, 0.6
        dist = exact_inorder_clf_distribution(2, p_good, p_bad)
        # outcomes: GG (.8*.8), GB (.8*.2), BG (.2*.4), BB (.2*.6)
        assert dist.pmf[0] == pytest.approx(0.64)
        assert dist.pmf[1] == pytest.approx(0.8 * 0.2 + 0.2 * 0.4)
        assert dist.pmf[2] == pytest.approx(0.2 * 0.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exact_inorder_clf_distribution(0, 0.9, 0.5)
        with pytest.raises(ConfigurationError):
            exact_inorder_clf_distribution(5, 1.5, 0.5)

    @given(
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pmf_is_distribution(self, n, p_good, p_bad):
        dist = exact_inorder_clf_distribution(n, p_good, p_bad)
        assert all(p >= -1e-12 for p in dist.pmf)
        assert sum(dist.pmf) == pytest.approx(1.0)


class TestMonteCarloAgreement:
    def test_identity_matches_exact(self):
        n, p_good, p_bad = 12, 0.9, 0.6
        exact = exact_inorder_clf_distribution(n, p_good, p_bad)
        sampled = monte_carlo_clf_distribution(
            Permutation.identity(n),
            p_good,
            p_bad,
            windows=30_000,
            continue_chain=False,
        )
        assert sampled.mean == pytest.approx(exact.mean, abs=0.05)
        for value in range(n + 1):
            assert sampled.pmf[value] == pytest.approx(exact.pmf[value], abs=0.02)

    def test_deterministic_with_seed(self):
        perm = calculate_permutation(12, 6)
        a = monte_carlo_clf_distribution(perm, 0.9, 0.6, windows=2000, seed=4)
        b = monte_carlo_clf_distribution(perm, 0.9, 0.6, windows=2000, seed=4)
        assert a.pmf == b.pmf

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_clf_distribution(Permutation(()), 0.9, 0.6)
        with pytest.raises(ConfigurationError):
            monte_carlo_clf_distribution(
                Permutation.identity(4), 0.9, 0.6, windows=0
            )


class TestForecast:
    def test_spreading_predicted_to_help(self):
        perm = calculate_permutation(24, 12)
        forecast = forecast_spreading(perm, 0.92, 0.6, windows=8000, seed=1)
        assert forecast.mean_improvement > 0.2
        assert forecast.acceptability_gain(2) > 0.0

    def test_forecast_matches_paper_channel_shape(self):
        """At the Figure-8 channel, in-order windows regularly exceed the
        threshold while the CPO window almost never does."""
        perm = calculate_permutation(24, 12)
        forecast = forecast_spreading(perm, 0.92, 0.6, windows=8000, seed=2)
        # In-order windows exceed the threshold ~45% of the time; the CPO
        # cuts that to a third (residual mass = bursts beyond the design
        # bound of 12 and multiple bursts per window).
        assert forecast.inorder.tail(2) > 0.3
        assert forecast.permuted.tail(2) < forecast.inorder.tail(2) / 2.5
