"""Unit and property tests for repro.core.permutation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutation import Permutation, stride_permutation
from repro.errors import PermutationError

permutations = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestConstruction:
    def test_identity(self):
        perm = Permutation.identity(5)
        assert perm.order == (0, 1, 2, 3, 4)
        assert perm.is_identity

    def test_identity_empty(self):
        assert len(Permutation.identity(0)) == 0

    def test_identity_negative_rejected(self):
        with pytest.raises(PermutationError):
            Permutation.identity(-1)

    def test_duplicate_rejected(self):
        with pytest.raises(PermutationError):
            Permutation([0, 0, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(PermutationError):
            Permutation([0, 3, 1])

    def test_negative_rejected(self):
        with pytest.raises(PermutationError):
            Permutation([0, -1, 2])

    def test_non_int_rejected(self):
        with pytest.raises(PermutationError):
            Permutation([0, "1", 2])  # type: ignore[list-item]

    def test_from_slots_inverts(self):
        # slot_of view: frame 0 -> slot 2, frame 1 -> slot 0, frame 2 -> slot 1
        perm = Permutation.from_slots([2, 0, 1])
        assert perm.order == (1, 2, 0)
        assert perm.slot_of(0) == 2

    def test_equality_and_hash(self):
        assert Permutation([1, 0]) == Permutation([1, 0])
        assert Permutation([1, 0]) != Permutation([0, 1])
        assert hash(Permutation([1, 0])) == hash(Permutation([1, 0]))


class TestViews:
    def test_slot_of_matches_order(self):
        perm = Permutation([2, 0, 3, 1])
        for slot, frame in enumerate(perm.order):
            assert perm.slot_of(frame) == slot

    def test_slot_of_out_of_range(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1]).slot_of(5)

    def test_inverse_twice_is_identity_map(self):
        perm = Permutation([3, 1, 0, 2])
        assert perm.inverse().inverse() == perm

    def test_getitem_and_iter(self):
        perm = Permutation([2, 0, 1])
        assert perm[0] == 2
        assert list(perm) == [2, 0, 1]


class TestApply:
    def test_apply_example(self):
        assert Permutation([2, 0, 1]).apply(["a", "b", "c"]) == ["c", "a", "b"]

    def test_unapply_restores(self):
        perm = Permutation([2, 0, 1])
        assert perm.unapply(perm.apply(["a", "b", "c"])) == ["a", "b", "c"]

    def test_apply_size_mismatch(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1]).apply([1, 2, 3])

    def test_unapply_size_mismatch(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1]).unapply([1])

    def test_lost_frames_sorted(self):
        perm = Permutation([3, 1, 0, 2])
        assert perm.lost_frames([0, 2]) == [0, 3]

    def test_lost_frames_out_of_range(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1]).lost_frames([7])

    def test_compose(self):
        a = Permutation([1, 2, 0])
        b = Permutation([2, 0, 1])
        composed = a.compose(b)
        assert composed.order == tuple(a.order[t] for t in b.order)

    def test_compose_size_mismatch(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1]).compose(Permutation([0]))


class TestStride:
    def test_table1_stride(self):
        perm = stride_permutation(17, 5, offset=0)
        assert perm.order[:4] == (0, 5, 10, 15)

    def test_stride_not_coprime_rejected(self):
        with pytest.raises(PermutationError):
            stride_permutation(8, 2)

    def test_stride_offset(self):
        perm = stride_permutation(5, 2, offset=1)
        assert perm.order == (1, 3, 0, 2, 4)

    def test_stride_zero_size_rejected(self):
        with pytest.raises(PermutationError):
            stride_permutation(0, 1)


class TestProperties:
    @given(permutations)
    @settings(max_examples=60)
    def test_roundtrip(self, order):
        perm = Permutation(order)
        window = [f"item{i}" for i in range(len(order))]
        assert perm.unapply(perm.apply(window)) == window

    @given(permutations)
    @settings(max_examples=60)
    def test_inverse_relationship(self, order):
        perm = Permutation(order)
        inverse = perm.inverse()
        for frame in range(len(order)):
            # inverse.order maps frame -> slot
            assert inverse[frame] == perm.slot_of(frame)
            assert perm.order[inverse[frame]] == frame

    @given(permutations)
    @settings(max_examples=60)
    def test_apply_is_bijection(self, order):
        perm = Permutation(order)
        window = list(range(len(order)))
        assert sorted(perm.apply(window)) == window
