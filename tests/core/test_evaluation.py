"""Unit and property tests for repro.core.evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import (
    burst_loss_run,
    burst_profile,
    clf_of_lost_frames,
    cyclic_worst_case_clf,
    group_spread,
    max_run,
    spread_table,
    worst_case_clf,
)
from repro.core.permutation import Permutation, stride_permutation
from repro.errors import PermutationError

permutations = st.integers(min_value=1, max_value=24).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestMaxRun:
    def test_empty(self):
        assert max_run([]) == 0

    def test_single(self):
        assert max_run([7]) == 1

    def test_docstring_example(self):
        assert max_run([3, 5, 6, 7, 10]) == 3

    def test_full_range(self):
        assert max_run(range(10)) == 10

    def test_two_runs(self):
        assert max_run([0, 1, 5, 6, 7]) == 3

    def test_duplicates_ignored(self):
        assert max_run([1, 1, 2, 2]) == 2

    @given(st.sets(st.integers(min_value=0, max_value=100)))
    def test_matches_naive(self, values):
        naive = 0
        current = 0
        for i in range(102):
            if i in values:
                current += 1
                naive = max(naive, current)
            else:
                current = 0
        assert max_run(values) == naive


class TestWorstCase:
    def test_identity_burst_is_run(self):
        perm = Permutation.identity(10)
        for b in range(1, 11):
            assert worst_case_clf(perm, b) == b

    def test_zero_burst(self):
        assert worst_case_clf(Permutation.identity(5), 0) == 0

    def test_burst_beyond_window(self):
        assert worst_case_clf(Permutation.identity(5), 9) == 5

    def test_table1_case(self):
        perm = stride_permutation(17, 5)
        assert worst_case_clf(perm, 5) == 1

    def test_burst_loss_run_bounds(self):
        perm = Permutation.identity(5)
        with pytest.raises(PermutationError):
            burst_loss_run(perm, -1, 2)
        with pytest.raises(PermutationError):
            burst_loss_run(perm, 6, 2)

    def test_burst_loss_run_clipped_at_end(self):
        perm = Permutation.identity(5)
        assert burst_loss_run(perm, 3, 10) == 2

    @given(permutations, st.integers(min_value=1, max_value=24))
    @settings(max_examples=60)
    def test_monotone_in_burst(self, order, b):
        perm = Permutation(order)
        b = min(b, len(order))
        if b < len(order):
            assert worst_case_clf(perm, b) <= worst_case_clf(perm, b + 1)

    @given(permutations, st.integers(min_value=1, max_value=24))
    @settings(max_examples=60)
    def test_bounded_by_burst_and_window(self, order, b):
        perm = Permutation(order)
        wc = worst_case_clf(perm, b)
        assert 0 < wc <= min(b, len(order))


class TestCyclic:
    def test_cyclic_at_least_plain(self):
        perm = stride_permutation(17, 5)
        for b in (2, 5, 8):
            assert cyclic_worst_case_clf(perm, b) >= worst_case_clf(perm, b)

    def test_identity_cyclic_equals_burst(self):
        perm = Permutation.identity(6)
        assert cyclic_worst_case_clf(perm, 4) == 4

    def test_straddle_found(self):
        # Permutation ending with frame n-1 and starting with frame 0:
        # a 2-slot straddling burst joins them across the boundary.
        perm = Permutation([0, 2, 4, 1, 3, 5])
        assert worst_case_clf(perm, 2) == 1
        assert cyclic_worst_case_clf(perm, 2) >= 2

    def test_burst_larger_than_window(self):
        perm = Permutation.identity(4)
        assert cyclic_worst_case_clf(perm, 6) == 6

    def test_zero_burst(self):
        assert cyclic_worst_case_clf(Permutation.identity(4), 0) == 0


def _cyclic_worst_case_clf_reference(perm: Permutation, burst: int) -> int:
    """The pre-optimization implementation, kept verbatim as an oracle.

    It materialized ``2 + ceil(burst / n)`` *full* copies of the window;
    the shipped version allocates only ``ceil((n - 1 + burst) / n)``
    copies.  Both must agree everywhere.
    """
    n = len(perm)
    if burst <= 0 or n == 0:
        return 0
    copies = 2 + (burst + n - 1) // n
    stream = [
        copy * n + frame for copy in range(copies) for frame in perm.order
    ]
    best = 0
    for start in range(n):
        lost = stream[start:start + min(burst, len(stream))]
        best = max(best, max_run(lost))
    return best


class TestCyclicRegression:
    """The trimmed-allocation cyclic evaluator equals the old one."""

    GRID = [
        (n, b)
        for n in (1, 2, 3, 4, 5, 6, 8, 12, 17, 24)
        for b in (1, 2, 3, n // 2, n - 1, n, n + 1, 2 * n, 3 * n + 1)
        if b > 0
    ]

    def test_equal_on_grid_of_strides(self):
        import math

        for n, b in self.GRID:
            for stride in range(1, n + 1):
                if math.gcd(stride, n) != 1:
                    continue
                perm = stride_permutation(n, stride)
                assert cyclic_worst_case_clf(
                    perm, b
                ) == _cyclic_worst_case_clf_reference(perm, b), (n, b, stride)

    def test_equal_on_grid_of_identities(self):
        for n, b in self.GRID:
            perm = Permutation.identity(n)
            assert cyclic_worst_case_clf(
                perm, b
            ) == _cyclic_worst_case_clf_reference(perm, b), (n, b)

    @given(permutations, st.integers(min_value=1, max_value=60))
    @settings(max_examples=120)
    def test_equal_on_random_permutations(self, order, b):
        perm = Permutation(order)
        assert cyclic_worst_case_clf(
            perm, b
        ) == _cyclic_worst_case_clf_reference(perm, b)


class TestProfile:
    def test_profile_length(self):
        perm = Permutation.identity(10)
        profile = burst_profile(perm, 4)
        assert len(profile.runs) == 7
        assert profile.worst == 4
        assert profile.mean == 4.0

    def test_profile_worst_matches(self):
        perm = stride_permutation(17, 5)
        profile = burst_profile(perm, 5)
        assert profile.worst == worst_case_clf(perm, 5)

    def test_profile_empty(self):
        assert burst_profile(Permutation.identity(5), 0).runs == ()


class TestSpreads:
    def test_spread_table_identity(self):
        assert spread_table(Permutation.identity(5)) == [1, 1, 1, 1]

    def test_clf_of_lost_frames(self):
        assert clf_of_lost_frames([2, 3, 4, 8]) == 3

    def test_group_spread_vacuous(self):
        perm = Permutation.identity(5)
        assert group_spread(perm, 1) == 5
        assert group_spread(perm, 6) == 5

    @given(permutations, st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12))
    @settings(max_examples=80)
    def test_group_spread_characterizes_clf(self, order, b, c):
        """wc(perm, b) <= c  iff  every (c+1)-frame window spreads >= b."""
        perm = Permutation(order)
        n = len(order)
        b = min(b, n)
        c = min(c, n)
        wc = worst_case_clf(perm, b)
        if c >= n or b >= n:
            return  # characterization applies to interior cases
        assert (wc <= c) == (group_spread(perm, c + 1) >= b)
