"""Deeper semantics of WindowResult (repro.core.protocol)."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream


@pytest.fixture(scope="module")
def lossy_result():
    stream = make_video_stream(GOP_12, gop_count=12)
    return run_session(stream, ProtocolConfig(p_bad=0.6, seed=19))


class TestWindowSemantics:
    def test_arrival_times_only_for_received(self, lossy_result):
        for window in lossy_result.windows:
            assert set(window.arrival_times) == window.received

    def test_arrivals_before_playback_slots(self, lossy_result):
        fps = 24.0
        for window in lossy_result.windows:
            for offset, arrival in window.arrival_times.items():
                slot = window.playback_start + offset / fps
                assert arrival <= slot + 1e-9

    def test_anchors_lead_transmission_in_layered_mode(self, lossy_result):
        for window in lossy_result.windows:
            anchors = {
                offset
                for offset in range(window.frames)
                if offset % 12 in (0, 3, 6, 9)
            }
            head = set(window.transmission_order[: len(anchors)])
            assert head == anchors

    def test_recovered_bounded_by_retransmissions(self, lossy_result):
        for window in lossy_result.windows:
            assert window.recovered <= window.retransmissions

    def test_first_attempt_stats_match_network_losses(self, lossy_result):
        for window in lossy_result.windows:
            lost, runs, total = window.first_attempt_stats
            assert lost == window.lost_in_network
            assert total == window.sent

    def test_layer_bursts_cover_all_layers(self, lossy_result):
        for window in lossy_result.windows:
            assert set(window.layer_bursts) == set(window.layer_sizes)

    def test_late_frames_not_in_received(self, lossy_result):
        for window in lossy_result.windows:
            # received + late + never-delivered partition the sent set
            assert len(window.received) + window.late <= window.sent


class TestInOrderMode:
    def test_baseline_transmission_is_playback_order(self):
        stream = make_video_stream(GOP_12, gop_count=4)
        config = ProtocolConfig(
            layered=False, scramble=False, p_good=1.0, p_bad=0.0,
            lossy_feedback=False,
        )
        result = run_session(stream, config)
        for window in result.windows:
            assert list(window.transmission_order) == list(range(window.frames))

    def test_scramble_without_layering_permutes_flat(self):
        stream = make_video_stream(GOP_12, gop_count=4)
        config = ProtocolConfig(
            layered=False, scramble=True, p_good=1.0, p_bad=0.0,
            lossy_feedback=False,
        )
        result = run_session(stream, config)
        window = result.windows[0]
        assert list(window.transmission_order) != list(range(window.frames))
        assert window.layer_sizes == {0: window.frames}
