"""Property tests of the certification contract across random (n, b)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import clf_lower_bound, max_burst_for_clf_one
from repro.core.cpo import EFFORT_FAST, calculate_permutation
from repro.core.evaluation import group_spread, worst_case_clf


@st.composite
def window_and_burst(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    b = draw(st.integers(min_value=1, max_value=n))
    return n, b


class TestCertificationContract:
    @given(window_and_burst())
    @settings(max_examples=60, deadline=None)
    def test_certified_at_least_lower_bound(self, case):
        n, b = case
        perm = calculate_permutation(n, b, effort=EFFORT_FAST)
        achieved = worst_case_clf(perm, b)
        assert achieved >= clf_lower_bound(n, b)

    @given(window_and_burst())
    @settings(max_examples=60, deadline=None)
    def test_clf_one_exactly_when_guaranteed(self, case):
        n, b = case
        perm = calculate_permutation(n, b, effort=EFFORT_FAST)
        if b <= max_burst_for_clf_one(n):
            assert worst_case_clf(perm, b) == 1

    @given(window_and_burst())
    @settings(max_examples=60, deadline=None)
    def test_result_is_permutation(self, case):
        n, b = case
        perm = calculate_permutation(n, b, effort=EFFORT_FAST)
        assert sorted(perm.order) == list(range(n))

    @given(window_and_burst())
    @settings(max_examples=40, deadline=None)
    def test_lemma1_consistency(self, case):
        """wc <= c iff every (c+1)-window spreads >= b (THEORY.md Lemma 1),
        checked on the construction's own certificate."""
        n, b = case
        if b >= n:
            return
        perm = calculate_permutation(n, b, effort=EFFORT_FAST)
        achieved = worst_case_clf(perm, b)
        if achieved < n:
            assert group_spread(perm, achieved + 1) >= b
        if achieved >= 1:
            # achieving `achieved` means some window of that size fits a burst
            assert group_spread(perm, achieved) <= b - 1 or achieved == 1
