"""FleetState / SharedFleet at planner scale (K >= 10^4).

``test_kernel.py`` pins the shared-memory round trip on a three-row
fleet; the hierarchical fan-out rides this transport at tens of
thousands of rows, so this suite pins it at that scale — exact float64
round-trips, the column order the zero-copy views rely on, and a
Hypothesis property over the admitted/departed row masks the serving
layer actually stores in these columns.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel

K = 10_000


class TestLargeFleetRoundTrip:
    def test_round_trip_is_exact_at_ten_thousand_rows(self):
        columns = {
            name: [
                # Awkward float64 values: negatives, tiny magnitudes,
                # and fractions with no short decimal form.
                (index * 0.1 + offset) * (-1.0 if index % 7 == 0 else 1.0) / 3.0
                for index in range(K)
            ]
            for offset, name in enumerate(kernel.ROW_COLUMNS)
        }
        state = kernel.FleetState(columns)
        handle = state.to_shared()
        try:
            copied = handle.open()
        finally:
            handle.unlink()
        assert copied == state
        for name in kernel.ROW_COLUMNS:
            assert copied.column(name) == columns[name]

    def test_column_order_is_pinned(self):
        # The zero-copy views address columns by position in this exact
        # order; reordering it silently corrupts every mapped fleet.
        assert kernel.ROW_COLUMNS == (
            "fwd_busy",
            "fb_busy",
            "pos",
            "fwd_bad",
            "fb_bad",
            "fwd_drawn",
            "fb_drawn",
            "ack_seq",
        )
        state = kernel.FleetState(
            {name: [float(i)] for i, name in enumerate(kernel.ROW_COLUMNS)}
        )
        assert state.names == kernel.ROW_COLUMNS

    def test_view_strides_match_state_layout(self):
        rows = 4096
        columns = {
            name: [float(offset * rows + index) for index in range(rows)]
            for offset, name in enumerate(kernel.ROW_COLUMNS)
        }
        handle = kernel.FleetState(columns).to_shared()
        try:
            with handle.map() as view:
                for name in kernel.ROW_COLUMNS:
                    column = view.column(name)
                    assert column[0] == columns[name][0]
                    assert column[rows - 1] == columns[name][rows - 1]
                snap = view.snapshot()
        finally:
            handle.unlink()
        assert snap.as_dict() == columns


@st.composite
def masked_fleets(draw):
    """A fleet's admitted/departed masks plus value columns, SoA style."""
    rows = draw(st.integers(min_value=1, max_value=512))
    mask_bits = st.lists(
        st.booleans(), min_size=rows, max_size=rows
    )
    admitted = draw(mask_bits)
    departed = draw(mask_bits)
    values = draw(
        st.lists(
            st.floats(
                allow_nan=False,
                allow_infinity=False,
                min_value=-1e12,
                max_value=1e12,
            ),
            min_size=rows,
            max_size=rows,
        )
    )
    return {
        "admitted": [1.0 if bit else 0.0 for bit in admitted],
        "departed": [1.0 if bit else 0.0 for bit in departed],
        "share_bps": values,
    }


class TestMaskProperty:
    @given(columns=masked_fleets())
    @settings(max_examples=50, deadline=None)
    def test_masks_survive_the_shared_copy(self, columns):
        state = kernel.FleetState(columns)
        handle = state.to_shared()
        try:
            copied = handle.open()
        finally:
            handle.unlink()
        assert copied == state
        # Masks must stay exactly 0.0/1.0 — a transport that nudged one
        # would silently flip a session's admitted/departed status.
        for name in ("admitted", "departed"):
            assert set(copied.column(name)) <= {0.0, 1.0}
            assert copied.column(name) == columns[name]
        assert all(
            math.isfinite(value) for value in copied.column("share_bps")
        )
        assert copied.column("share_bps") == columns["share_bps"]
