"""Tests for bottleneck gateways (repro.network.gateway)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.gateway import (
    CrossTraffic,
    DropTailGateway,
    FifoQueue,
    GatewayChannel,
    RedGateway,
)
from repro.network.packet import Packet


def packet(seq=0, size=1000):
    return Packet(sequence=seq, frame_index=0, size_bytes=size)


class TestFifoQueue:
    def test_validation(self):
        with pytest.raises(NetworkError):
            FifoQueue(0, 5)
        with pytest.raises(NetworkError):
            FifoQueue(1000, 0)

    def test_departure_timing(self):
        queue = FifoQueue(service_rate_bps=8000, capacity_packets=4)
        d1 = queue.enqueue(1000, 0.0)   # 1 s of service
        d2 = queue.enqueue(1000, 0.0)
        assert d1 == pytest.approx(1.0)
        assert d2 == pytest.approx(2.0)

    def test_overflow_returns_none(self):
        queue = FifoQueue(service_rate_bps=8000, capacity_packets=2)
        assert queue.enqueue(1000, 0.0) is not None
        assert queue.enqueue(1000, 0.0) is not None
        assert queue.enqueue(1000, 0.0) is None

    def test_drain_frees_capacity(self):
        queue = FifoQueue(service_rate_bps=8000, capacity_packets=1)
        assert queue.enqueue(1000, 0.0) is not None  # departs at 1.0
        assert queue.enqueue(1000, 0.5) is None
        assert queue.enqueue(1000, 1.5) is not None

    def test_occupancy(self):
        queue = FifoQueue(service_rate_bps=8000, capacity_packets=4)
        queue.enqueue(1000, 0.0)
        queue.enqueue(1000, 0.0)
        assert queue.occupancy(0.5) == 2
        assert queue.occupancy(1.5) == 1
        assert queue.occupancy(5.0) == 0

    def test_idle_gap_resets_start(self):
        queue = FifoQueue(service_rate_bps=8000, capacity_packets=4)
        queue.enqueue(1000, 0.0)
        late = queue.enqueue(1000, 10.0)
        assert late == pytest.approx(11.0)


class TestCrossTraffic:
    def test_validation(self):
        with pytest.raises(NetworkError):
            CrossTraffic(burst_rate_bps=0)
        with pytest.raises(NetworkError):
            CrossTraffic(burst_rate_bps=1e6, mean_on_seconds=0)

    def test_deterministic(self):
        a = CrossTraffic(burst_rate_bps=1e6, seed=3)
        b = CrossTraffic(burst_rate_bps=1e6, seed=3)
        assert a.arrivals_until(5.0) == b.arrivals_until(5.0)

    def test_arrivals_monotone_and_bounded(self):
        traffic = CrossTraffic(burst_rate_bps=1e6, seed=1)
        arrivals = traffic.arrivals_until(10.0)
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t <= 10.0 for t in arrivals)

    def test_incremental_queries(self):
        traffic = CrossTraffic(burst_rate_bps=1e6, seed=1)
        first = traffic.arrivals_until(5.0)
        second = traffic.arrivals_until(10.0)
        combined = CrossTraffic(burst_rate_bps=1e6, seed=1).arrivals_until(10.0)
        assert first + second == combined

    def test_clock_cannot_rewind(self):
        traffic = CrossTraffic(burst_rate_bps=1e6, seed=1)
        traffic.arrivals_until(5.0)
        with pytest.raises(NetworkError):
            traffic.arrivals_until(4.0)

    def test_burst_structure(self):
        """Arrivals cluster into ON periods with back-to-back spacing."""
        traffic = CrossTraffic(
            burst_rate_bps=1.2e6, packet_size_bytes=1500, seed=2
        )
        arrivals = traffic.arrivals_until(30.0)
        assert len(arrivals) > 10
        gap = 1500 * 8 / 1.2e6
        tight = sum(
            1 for a, b in zip(arrivals, arrivals[1:]) if b - a <= gap * 1.01
        )
        assert tight / len(arrivals) > 0.5


class TestDropTailGateway:
    def test_no_cross_traffic_no_loss_when_underloaded(self):
        gateway = DropTailGateway(FifoQueue(1e6, 10))
        for i in range(20):
            assert gateway.offer(1000, i * 0.1) is not None
        assert gateway.stats.dropped == 0

    def test_overload_drops(self):
        gateway = DropTailGateway(FifoQueue(8000, 2))
        outcomes = [gateway.offer(1000, 0.0) for _ in range(10)]
        assert outcomes.count(None) == 8
        assert gateway.stats.media_loss_rate == pytest.approx(0.8)

    def test_cross_traffic_causes_media_loss(self):
        cross = CrossTraffic(
            burst_rate_bps=4e6, mean_on_seconds=1.0, mean_off_seconds=0.2, seed=4
        )
        gateway = DropTailGateway(FifoQueue(1e6, 5), cross)
        drops = 0
        for i in range(200):
            if gateway.offer(2000, i * 0.05) is None:
                drops += 1
        assert drops > 0
        assert gateway.stats.background_offered > 0


class TestRedGateway:
    def test_threshold_validation(self):
        queue = FifoQueue(1e6, 10)
        with pytest.raises(NetworkError):
            RedGateway(queue, min_threshold=8, max_threshold=4)
        with pytest.raises(NetworkError):
            RedGateway(queue, max_drop_probability=0.0)
        with pytest.raises(NetworkError):
            RedGateway(queue, ewma_weight=0.0)

    def test_empty_queue_no_drops(self):
        gateway = RedGateway(FifoQueue(1e6, 10), seed=1)
        for i in range(20):
            assert gateway.offer(500, i * 0.1) is not None

    def test_early_drops_before_overflow(self):
        """RED drops some packets while the queue still has room."""
        gateway = RedGateway(
            FifoQueue(8000, 20), min_threshold=2, max_threshold=18, seed=3,
            max_drop_probability=0.5,
        )
        outcomes = [gateway.offer(1000, 0.0) for _ in range(18)]
        assert None in outcomes          # dropped early...
        assert gateway.queue.occupancy(0.0) < 18  # ...before filling up


class TestGatewayChannel:
    def test_transmission_interface(self):
        gateway = DropTailGateway(FifoQueue(1e6, 10))
        channel = GatewayChannel(
            gateway, access_bandwidth_bps=1e6, propagation_delay=0.01
        )
        result = channel.send(packet(size=1000), 0.0)
        assert not result.lost
        assert result.arrives_at is not None
        assert result.arrives_at > result.completed_at

    def test_lost_packet_marked(self):
        gateway = DropTailGateway(FifoQueue(8000, 1))
        channel = GatewayChannel(
            gateway, access_bandwidth_bps=1e9, propagation_delay=0.0
        )
        results = channel.send_all([packet(i) for i in range(5)], 0.0)
        assert any(r.lost for r in results)

    def test_validation(self):
        gateway = DropTailGateway(FifoQueue(1e6, 10))
        with pytest.raises(NetworkError):
            GatewayChannel(gateway, access_bandwidth_bps=0, propagation_delay=0.0)
        channel = GatewayChannel(
            gateway, access_bandwidth_bps=1e6, propagation_delay=0.0
        )
        with pytest.raises(NetworkError):
            channel.send(packet(), -1.0)

    def test_protocol_session_integration(self):
        """A full protocol session runs over a gateway channel."""
        from repro.core.protocol import ProtocolConfig, ProtocolSession
        from repro.media.gop import GOP_12
        from repro.media.stream import make_video_stream
        from repro.network.channel import SimulatedChannel

        stream = make_video_stream(GOP_12, gop_count=6)
        config = ProtocolConfig(seed=1, lossy_feedback=False)
        forward = GatewayChannel(
            DropTailGateway(FifoQueue(2e6, 20)),
            access_bandwidth_bps=config.bandwidth_bps,
            propagation_delay=config.rtt / 2,
        )
        feedback = SimulatedChannel(
            bandwidth_bps=config.bandwidth_bps,
            propagation_delay=config.rtt / 2,
        )
        session = ProtocolSession(stream, config, channels=(forward, feedback))
        result = session.run()
        assert len(result.windows) == 3
