"""Tests for Gilbert parameter estimation (repro.network.estimation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.estimation import GilbertEstimator, fit_gilbert, loss_runs
from repro.network.markov import GilbertModel


class TestLossRuns:
    def test_basic(self):
        assert loss_runs([0, 1, 1, 0, 1]) == [2, 1]

    def test_trailing_run(self):
        assert loss_runs([1, 1]) == [2]

    def test_empty(self):
        assert loss_runs([]) == []

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            loss_runs([2])

    @given(st.lists(st.integers(min_value=0, max_value=1)))
    def test_runs_sum_to_losses(self, indicator):
        assert sum(loss_runs(indicator)) == sum(indicator)


class TestEstimator:
    def test_prior_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertEstimator(prior_run_count=0)

    def test_recovers_parameters(self):
        """Feed genuine Gilbert output; the fit lands near the truth."""
        true = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        estimator = GilbertEstimator()
        for _ in range(400):
            window = [1 if lost else 0 for lost in true.losses(100)]
            estimator.observe(window)
        assert estimator.p_bad == pytest.approx(0.6, abs=0.05)
        assert estimator.p_good == pytest.approx(0.92, abs=0.02)
        assert estimator.mean_burst == pytest.approx(2.5, abs=0.3)
        assert estimator.loss_rate == pytest.approx(
            true.stationary_loss_rate, abs=0.03
        )

    def test_clean_channel_degenerates_gracefully(self):
        estimator = GilbertEstimator()
        for _ in range(20):
            estimator.observe([0] * 50)
        assert estimator.p_good > 0.99
        assert estimator.burst_quantile(0.05) >= 1

    def test_windows_counter(self):
        estimator = GilbertEstimator()
        estimator.observe([0, 1])
        estimator.observe([0, 0])
        assert estimator.windows_observed == 2

    def test_fit_batch(self):
        estimator = fit_gilbert([[0, 1, 1, 0], [1, 0, 0, 0]])
        assert estimator.windows_observed == 2


class TestBurstQuantile:
    def test_epsilon_validation(self):
        estimator = GilbertEstimator()
        with pytest.raises(ConfigurationError):
            estimator.burst_quantile(0.0)
        with pytest.raises(ConfigurationError):
            estimator.burst_quantile(1.0)

    def test_geometric_quantile(self):
        """With p_bad = 0.6, P(run > b) = 0.6^b; 0.6^6 ~ 0.047 < 0.05."""
        true = GilbertModel(p_good=0.92, p_bad=0.6, seed=9)
        estimator = GilbertEstimator()
        for _ in range(400):
            estimator.observe([1 if lost else 0 for lost in true.losses(100)])
        assert estimator.burst_quantile(0.05) in (5, 6, 7)

    def test_smaller_epsilon_bigger_bound(self):
        true = GilbertModel(p_good=0.9, p_bad=0.7, seed=3)
        estimator = GilbertEstimator()
        for _ in range(100):
            estimator.observe([1 if lost else 0 for lost in true.losses(100)])
        assert estimator.burst_quantile(0.01) > estimator.burst_quantile(0.2)

    def test_quantile_actually_covers(self):
        """Empirically, at most ~epsilon of runs exceed the bound."""
        from repro.network.estimation import loss_runs as runs_of

        true = GilbertModel(p_good=0.92, p_bad=0.6, seed=11)
        estimator = GilbertEstimator()
        all_runs = []
        for _ in range(300):
            indicator = [1 if lost else 0 for lost in true.losses(100)]
            estimator.observe(indicator)
            all_runs.extend(runs_of(indicator))
        bound = estimator.burst_quantile(0.05)
        exceeding = sum(1 for run in all_runs if run > bound)
        assert exceeding / len(all_runs) <= 0.08
