"""Tests for the event loop (repro.network.simulator)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.simulator import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(3.0, lambda: seen.append("c"))
        assert loop.run() == 3
        assert seen == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_run_fifo(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_schedule_in(self):
        loop = EventLoop()
        seen = []
        loop.schedule_in(0.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.5]

    def test_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(NetworkError):
            loop.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            EventLoop().schedule_in(-1, lambda: None)


class TestControl:
    def test_cancel(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule(1.0, lambda: seen.append("x"))
        loop.cancel(event)
        assert loop.run() == 0
        assert seen == []

    def test_until_bound(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0
        loop.run()
        assert seen == [1, 5]

    def test_self_scheduling(self):
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                loop.schedule_in(1.0, tick)

        loop.schedule(0.0, tick)
        loop.run()
        assert count[0] == 5
        assert loop.now == 4.0

    def test_event_budget(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(0.1, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(NetworkError):
            loop.run(max_events=100)

    def test_peek_time(self):
        loop = EventLoop()
        assert loop.peek_time() is None
        event = loop.schedule(3.0, lambda: None)
        assert loop.peek_time() == 3.0
        loop.cancel(event)
        assert loop.peek_time() is None

    def test_pending_count(self):
        loop = EventLoop()
        a = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        loop.cancel(a)
        assert loop.pending == 1


class TestCancellationSemantics:
    """Regression pins for the service layer's two load-bearing
    guarantees: a cancelled event never fires, and events at identical
    times run in scheduling (FIFO) order — the per-window share
    reallocation of ``repro.serve`` depends on both."""

    def test_cancelled_event_among_same_time_peers(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        doomed = loop.schedule(1.0, lambda: seen.append("doomed"))
        loop.schedule(1.0, lambda: seen.append("b"))
        loop.cancel(doomed)
        assert loop.run() == 2
        assert seen == ["a", "b"]

    def test_cancel_from_an_earlier_same_time_callback(self):
        """Cancelling a same-timestamp event that is already in the
        heap, from a callback firing before it, must suppress it."""
        loop = EventLoop()
        seen = []
        doomed = loop.schedule(2.0, lambda: seen.append("doomed"))
        loop.schedule(1.0, lambda: loop.cancel(doomed))
        survivor = loop.schedule(2.0, lambda: seen.append("survivor"))
        del survivor
        assert loop.run() == 2
        assert seen == ["survivor"]

    def test_cancel_same_timestamp_sibling_mid_tick(self):
        """Even at the *same* virtual time, a callback can cancel a
        sibling scheduled after it and the sibling must not fire."""
        loop = EventLoop()
        seen = []
        handles = {}

        def first():
            seen.append("first")
            loop.cancel(handles["second"])

        loop.schedule(1.0, first)
        handles["second"] = loop.schedule(1.0, lambda: seen.append("second"))
        loop.schedule(1.0, lambda: seen.append("third"))
        assert loop.run() == 2
        assert seen == ["first", "third"]

    def test_identical_times_run_in_scheduling_order(self):
        """FIFO among equal timestamps, regardless of heap shape."""
        loop = EventLoop()
        seen = []
        for index in range(10):
            loop.schedule(5.0, lambda i=index: seen.append(i))
        loop.run()
        assert seen == list(range(10))

    def test_identical_times_fifo_across_nested_scheduling(self):
        """Events scheduled *during* a tick for the same timestamp run
        after everything scheduled for it earlier."""
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("nested"))

        loop.schedule(1.0, first)
        loop.schedule(1.0, lambda: seen.append("second"))
        loop.run()
        assert seen == ["first", "second", "nested"]

    def test_cancel_after_fire_is_a_noop(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule(1.0, lambda: seen.append("x"))
        loop.run()
        loop.cancel(event)  # already fired: must not corrupt the loop
        loop.schedule(2.0, lambda: seen.append("y"))
        assert loop.run() == 1
        assert seen == ["x", "y"]

    def test_double_cancel_is_a_noop(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.cancel(event)
        loop.cancel(event)
        assert loop.run() == 0

    def test_cancelled_events_do_not_advance_the_clock(self):
        loop = EventLoop()
        seen = []
        late = loop.schedule(9.0, lambda: seen.append("late"))
        loop.schedule(1.0, lambda: seen.append("early"))
        loop.cancel(late)
        loop.run()
        assert seen == ["early"]
        assert loop.now == 1.0
