"""Tests for the event loop (repro.network.simulator)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.simulator import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(3.0, lambda: seen.append("c"))
        assert loop.run() == 3
        assert seen == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_run_fifo(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_schedule_in(self):
        loop = EventLoop()
        seen = []
        loop.schedule_in(0.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.5]

    def test_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(NetworkError):
            loop.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            EventLoop().schedule_in(-1, lambda: None)


class TestControl:
    def test_cancel(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule(1.0, lambda: seen.append("x"))
        loop.cancel(event)
        assert loop.run() == 0
        assert seen == []

    def test_until_bound(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0
        loop.run()
        assert seen == [1, 5]

    def test_self_scheduling(self):
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                loop.schedule_in(1.0, tick)

        loop.schedule(0.0, tick)
        loop.run()
        assert count[0] == 5
        assert loop.now == 4.0

    def test_event_budget(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(0.1, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(NetworkError):
            loop.run(max_events=100)

    def test_peek_time(self):
        loop = EventLoop()
        assert loop.peek_time() is None
        event = loop.schedule(3.0, lambda: None)
        assert loop.peek_time() == 3.0
        loop.cancel(event)
        assert loop.peek_time() is None

    def test_pending_count(self):
        loop = EventLoop()
        a = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        loop.cancel(a)
        assert loop.pending == 1
