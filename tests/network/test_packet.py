"""Tests for packetization (repro.network.packet)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.media.ldu import Ldu
from repro.network.packet import (
    DEFAULT_PACKET_SIZE_BYTES,
    FrameAssembler,
    Packet,
    Packetizer,
    fragments_needed,
)


class TestPacket:
    def test_control_packet(self):
        packet = Packet(sequence=0, frame_index=None)
        assert packet.is_control

    def test_validation(self):
        with pytest.raises(NetworkError):
            Packet(sequence=-1, frame_index=0)
        with pytest.raises(NetworkError):
            Packet(sequence=0, frame_index=0, fragment=2, fragments=2)
        with pytest.raises(NetworkError):
            Packet(sequence=0, frame_index=0, size_bytes=-1)


class TestFragmentsNeeded:
    def test_zero_size_frame_still_one_packet(self):
        assert fragments_needed(0) == 1

    def test_exact_fit(self):
        assert fragments_needed(DEFAULT_PACKET_SIZE_BYTES * 8) == 1

    def test_one_byte_over(self):
        assert fragments_needed(DEFAULT_PACKET_SIZE_BYTES * 8 + 8) == 2

    def test_paper_gop_example(self):
        # Star Wars max GOP: 932710 bits ~ 113 KB -> 8 packets of 16 KB
        assert fragments_needed(932710) == 8

    def test_validation(self):
        with pytest.raises(NetworkError):
            fragments_needed(-1)
        with pytest.raises(NetworkError):
            fragments_needed(100, packet_size_bytes=0)


class TestPacketizer:
    def test_sequences_monotone(self):
        packetizer = Packetizer()
        a = packetizer.packetize(Ldu(index=0, size_bits=8))
        b = packetizer.packetize(Ldu(index=1, size_bits=8))
        assert a[0].sequence == 0
        assert b[0].sequence == 1

    def test_multi_fragment_frame(self):
        packetizer = Packetizer(packet_size_bytes=10)
        packets = packetizer.packetize(Ldu(index=0, size_bits=200))  # 25 bytes
        assert len(packets) == 3
        assert [p.fragment for p in packets] == [0, 1, 2]
        assert all(p.fragments == 3 for p in packets)
        assert sum(p.size_bytes for p in packets) == 25

    def test_retransmission_flag(self):
        packetizer = Packetizer()
        packets = packetizer.packetize(
            Ldu(index=0, size_bits=8), is_retransmission=True
        )
        assert packets[0].is_retransmission

    def test_window_index_carried(self):
        packetizer = Packetizer()
        packets = packetizer.packetize(Ldu(index=0, size_bits=8), window_index=7)
        assert packets[0].window_index == 7

    def test_control_packet_consumes_sequence(self):
        packetizer = Packetizer()
        control = packetizer.control_packet()
        assert control.is_control
        assert packetizer.next_sequence == 1

    def test_invalid_packet_size(self):
        with pytest.raises(NetworkError):
            Packetizer(packet_size_bytes=0)


class TestFrameAssembler:
    def test_single_fragment_completes(self):
        assembler = FrameAssembler()
        packetizer = Packetizer()
        (packet,) = packetizer.packetize(Ldu(index=4, size_bits=8))
        assert assembler.deliver(packet) == 4
        assert assembler.is_complete(4)

    def test_partial_frame_incomplete(self):
        assembler = FrameAssembler()
        packetizer = Packetizer(packet_size_bytes=10)
        packets = packetizer.packetize(Ldu(index=2, size_bits=200))
        assert assembler.deliver(packets[0]) is None
        assert not assembler.is_complete(2)
        assert assembler.deliver(packets[1]) is None
        assert assembler.deliver(packets[2]) == 2
        assert assembler.complete_frames() == [2]

    def test_duplicate_delivery_idempotent(self):
        assembler = FrameAssembler()
        packetizer = Packetizer()
        (packet,) = packetizer.packetize(Ldu(index=0, size_bits=8))
        assembler.deliver(packet)
        assert assembler.deliver(packet) == 0  # still complete

    def test_control_packets_ignored(self):
        assembler = FrameAssembler()
        control = Packetizer().control_packet()
        assert assembler.deliver(control) is None

    def test_unknown_frame_incomplete(self):
        assert not FrameAssembler().is_complete(9)
