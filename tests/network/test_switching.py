"""Tests for the non-stationary channel (SwitchingGilbertModel)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.markov import GilbertModel, GilbertPhase, SwitchingGilbertModel


class TestPhase:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertPhase(packets=0, p_good=0.9, p_bad=0.5)
        with pytest.raises(ConfigurationError):
            GilbertPhase(packets=10, p_good=1.5, p_bad=0.5)


class TestSwitchingModel:
    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            SwitchingGilbertModel([])

    def test_single_phase_matches_plain_model(self):
        switching = SwitchingGilbertModel(
            [GilbertPhase(packets=10_000, p_good=0.9, p_bad=0.6)], seed=3
        )
        plain = GilbertModel(p_good=0.9, p_bad=0.6, seed=3)
        assert switching.losses(500) == plain.losses(500)

    def test_phase_transition_changes_rate(self):
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=2000, p_good=0.999, p_bad=0.1),
                GilbertPhase(packets=2000, p_good=0.7, p_bad=0.8),
            ],
            seed=5,
        )
        losses = model.losses(4000)
        mild = sum(losses[:2000]) / 2000
        harsh = sum(losses[2000:]) / 2000
        assert mild < 0.05
        assert harsh > 0.3

    def test_last_phase_repeats(self):
        model = SwitchingGilbertModel(
            [GilbertPhase(packets=10, p_good=1.0, p_bad=0.0)], seed=1
        )
        assert not any(model.losses(100))
        assert model.current_phase.packets == 10

    def test_reset(self):
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=50, p_good=0.9, p_bad=0.5),
                GilbertPhase(packets=50, p_good=0.5, p_bad=0.9),
            ],
            seed=2,
        )
        first = model.losses(150)
        model.reset()
        assert model.losses(150) == first

    def test_negative_count(self):
        model = SwitchingGilbertModel(
            [GilbertPhase(packets=5, p_good=0.9, p_bad=0.5)]
        )
        with pytest.raises(ConfigurationError):
            model.losses(-1)

    def test_state_carries_across_phases(self):
        """An absorbing BAD phase keeps the chain BAD as the next phase
        begins (state is continuous across boundaries)."""
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=5, p_good=0.0, p_bad=1.0),
                GilbertPhase(packets=5, p_good=1.0, p_bad=1.0),
            ],
            seed=1,
        )
        losses = model.losses(10)
        assert all(losses)  # BAD is absorbing in both phases once entered
