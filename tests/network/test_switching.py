"""Tests for the non-stationary channel (SwitchingGilbertModel)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.markov import (
    GilbertModel,
    GilbertPhase,
    SwitchingGilbertModel,
    phase_params_at,
    phase_segments,
)

#: The regression-pin schedule: three regimes, 12 + 8 packets then the
#: final phase forever.
_PIN_PHASES = (
    GilbertPhase(12, 0.95, 0.4),
    GilbertPhase(8, 0.6, 0.9),
    GilbertPhase(20, 0.99, 0.2),
)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertPhase(packets=0, p_good=0.9, p_bad=0.5)
        with pytest.raises(ConfigurationError):
            GilbertPhase(packets=10, p_good=1.5, p_bad=0.5)


class TestSwitchingModel:
    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            SwitchingGilbertModel([])

    def test_single_phase_matches_plain_model(self):
        switching = SwitchingGilbertModel(
            [GilbertPhase(packets=10_000, p_good=0.9, p_bad=0.6)], seed=3
        )
        plain = GilbertModel(p_good=0.9, p_bad=0.6, seed=3)
        assert switching.losses(500) == plain.losses(500)

    def test_phase_transition_changes_rate(self):
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=2000, p_good=0.999, p_bad=0.1),
                GilbertPhase(packets=2000, p_good=0.7, p_bad=0.8),
            ],
            seed=5,
        )
        losses = model.losses(4000)
        mild = sum(losses[:2000]) / 2000
        harsh = sum(losses[2000:]) / 2000
        assert mild < 0.05
        assert harsh > 0.3

    def test_last_phase_repeats(self):
        model = SwitchingGilbertModel(
            [GilbertPhase(packets=10, p_good=1.0, p_bad=0.0)], seed=1
        )
        assert not any(model.losses(100))
        assert model.current_phase.packets == 10

    def test_reset(self):
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=50, p_good=0.9, p_bad=0.5),
                GilbertPhase(packets=50, p_good=0.5, p_bad=0.9),
            ],
            seed=2,
        )
        first = model.losses(150)
        model.reset()
        assert model.losses(150) == first

    def test_negative_count(self):
        model = SwitchingGilbertModel(
            [GilbertPhase(packets=5, p_good=0.9, p_bad=0.5)]
        )
        with pytest.raises(ConfigurationError):
            model.losses(-1)

    def test_state_carries_across_phases(self):
        """An absorbing BAD phase keeps the chain BAD as the next phase
        begins (state is continuous across boundaries)."""
        model = SwitchingGilbertModel(
            [
                GilbertPhase(packets=5, p_good=0.0, p_bad=1.0),
                GilbertPhase(packets=5, p_good=1.0, p_bad=1.0),
            ],
            seed=1,
        )
        losses = model.losses(10)
        assert all(losses)  # BAD is absorbing in both phases once entered


class TestGoldenTrajectories:
    """Seeded trajectories pinned forever.

    Any change to the switching model's draw order, state carry-over or
    phase accounting shows up here before it silently re-seeds every
    scenario manifest in the repo.
    """

    @pytest.mark.parametrize(
        "seed,loss_indices",
        [
            (7, (13, 14, 15, 16)),
            (42, (14, 15, 16, 17, 18, 19)),
        ],
    )
    def test_pinned_trajectory(self, seed, loss_indices):
        model = SwitchingGilbertModel(list(_PIN_PHASES), seed=seed)
        losses = model.losses(48)
        assert tuple(i for i, lost in enumerate(losses) if lost) == (
            loss_indices
        )

    def test_step_equals_losses(self):
        """`step` and `losses` walk one shared draw stream identically
        — the API contract `GilbertModel` also honours."""
        batched = SwitchingGilbertModel(list(_PIN_PHASES), seed=7)
        stepped = SwitchingGilbertModel(list(_PIN_PHASES), seed=7)
        assert [stepped.step() for _ in range(48)] == batched.losses(48)

    def test_step_and_losses_interleave(self):
        """Mixing the two APIs consumes the same stream as either alone."""
        reference = SwitchingGilbertModel(list(_PIN_PHASES), seed=42)
        mixed = SwitchingGilbertModel(list(_PIN_PHASES), seed=42)
        expected = reference.losses(40)
        actual = (
            [mixed.step() for _ in range(10)]
            + mixed.losses(20)
            + [mixed.step() for _ in range(10)]
        )
        assert actual == expected

    def test_api_surface_matches_gilbert_model(self):
        """Every public method of `GilbertModel` exists here with the
        same behaviourally-compatible signature (drop-in for channels)."""
        for name in ("step", "losses", "reset"):
            assert callable(getattr(SwitchingGilbertModel, name))
        model = SwitchingGilbertModel(list(_PIN_PHASES), seed=0)
        assert isinstance(model.step(), bool)
        assert isinstance(model.losses(3), list)


class TestPhaseHelpers:
    """`phase_params_at` / `phase_segments` — the kernel's lookup core."""

    def test_params_walk_the_schedule(self):
        assert phase_params_at(_PIN_PHASES, 0) == (0.95, 0.4)
        assert phase_params_at(_PIN_PHASES, 11) == (0.95, 0.4)
        assert phase_params_at(_PIN_PHASES, 12) == (0.6, 0.9)
        assert phase_params_at(_PIN_PHASES, 19) == (0.6, 0.9)
        assert phase_params_at(_PIN_PHASES, 20) == (0.99, 0.2)
        # The final phase repeats forever, far past its nominal length.
        assert phase_params_at(_PIN_PHASES, 10_000) == (0.99, 0.2)

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            phase_params_at(_PIN_PHASES, -1)
        with pytest.raises(ConfigurationError):
            phase_params_at((), 0)

    def test_segments_cover_exactly(self):
        segments = phase_segments(_PIN_PHASES, 0, 48)
        assert segments == [
            (12, 0.95, 0.4),
            (8, 0.6, 0.9),
            (28, 0.99, 0.2),
        ]

    def test_segments_mid_phase_start(self):
        assert phase_segments(_PIN_PHASES, 10, 5) == [
            (2, 0.95, 0.4),
            (3, 0.6, 0.9),
        ]
        assert phase_segments(_PIN_PHASES, 20, 100) == [(100, 0.99, 0.2)]

    def test_segments_agree_with_params(self):
        """Expanding the segments packet by packet equals the pointwise
        lookup — the equivalence the kernel's prefetch relies on."""
        start, count = 5, 40
        expanded = []
        for take, p_good, p_bad in phase_segments(_PIN_PHASES, start, count):
            expanded.extend([(p_good, p_bad)] * take)
        assert expanded == [
            phase_params_at(_PIN_PHASES, start + i) for i in range(count)
        ]

    def test_segments_validation(self):
        assert phase_segments(_PIN_PHASES, 3, 0) == []
        with pytest.raises(ConfigurationError):
            phase_segments(_PIN_PHASES, -1, 5)
        with pytest.raises(ConfigurationError):
            phase_segments(_PIN_PHASES, 0, -5)
        with pytest.raises(ConfigurationError):
            phase_segments((), 0, 5)
