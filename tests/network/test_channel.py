"""Tests for the simulated channel (repro.network.channel)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.channel import SimulatedChannel, make_duplex
from repro.network.markov import GilbertModel
from repro.network.packet import Packet


def packet(seq=0, size=1000):
    return Packet(sequence=seq, frame_index=0, size_bytes=size)


class TestTiming:
    def test_serialization_time(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.1)
        assert channel.serialization_time(packet(size=1000)) == pytest.approx(1.0)

    def test_arrival_time(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.1)
        t = channel.send(packet(size=1000), at_time=0.0)
        assert t.sent_at == 0.0
        assert t.completed_at == pytest.approx(1.0)
        assert t.arrives_at == pytest.approx(1.1)
        assert not t.lost

    def test_fifo_queueing(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.0)
        first = channel.send(packet(0), 0.0)
        second = channel.send(packet(1), 0.0)
        assert second.sent_at == pytest.approx(first.completed_at)

    def test_idle_gap_respected(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.0)
        channel.send(packet(0), 0.0)
        late = channel.send(packet(1), 10.0)
        assert late.sent_at == pytest.approx(10.0)

    def test_negative_time_rejected(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.0)
        with pytest.raises(NetworkError):
            channel.send(packet(), -1.0)

    def test_reset_clock(self):
        channel = SimulatedChannel(bandwidth_bps=8000, propagation_delay=0.0)
        channel.send(packet(), 0.0)
        channel.reset_clock()
        assert channel.busy_until == 0.0

    def test_validation(self):
        with pytest.raises(NetworkError):
            SimulatedChannel(bandwidth_bps=0, propagation_delay=0.1)
        with pytest.raises(NetworkError):
            SimulatedChannel(bandwidth_bps=10, propagation_delay=-1)


class TestLoss:
    def test_lossless_without_model(self):
        channel = SimulatedChannel(bandwidth_bps=1e6, propagation_delay=0.0)
        results = channel.send_all([packet(i) for i in range(50)], 0.0)
        assert not any(r.lost for r in results)
        assert channel.stats.loss_rate == 0.0

    def test_lossy_with_model(self):
        channel = SimulatedChannel(
            bandwidth_bps=1e6,
            propagation_delay=0.0,
            loss_model=GilbertModel(p_good=0.5, p_bad=0.5, seed=1),
        )
        results = channel.send_all([packet(i) for i in range(200)], 0.0)
        lost = sum(1 for r in results if r.lost)
        assert 0 < lost < 200
        assert channel.stats.lost == lost
        assert channel.stats.offered == 200

    def test_lost_packet_has_no_arrival(self):
        channel = SimulatedChannel(
            bandwidth_bps=1e6,
            propagation_delay=0.0,
            loss_model=GilbertModel(p_good=0.0, p_bad=1.0),
        )
        result = channel.send(packet(), 0.0)
        assert result.lost
        assert result.arrives_at is None

    def test_byte_accounting(self):
        channel = SimulatedChannel(bandwidth_bps=1e6, propagation_delay=0.0)
        channel.send(packet(size=100), 0.0)
        assert channel.stats.bytes_offered == 100
        assert channel.stats.bytes_delivered == 100


class TestDuplex:
    def test_make_duplex(self):
        forward, feedback = make_duplex(
            1_200_000, 0.023, p_good=0.92, p_bad=0.6, seed=1
        )
        assert forward.propagation_delay == pytest.approx(0.0115)
        assert feedback.propagation_delay == pytest.approx(0.0115)
        assert forward.loss_model is not None
        assert feedback.loss_model is not None

    def test_ideal_feedback(self):
        _, feedback = make_duplex(
            1_200_000, 0.023, p_good=0.92, p_bad=0.6, lossy_feedback=False
        )
        assert feedback.loss_model is None

    def test_independent_loss_streams(self):
        forward, feedback = make_duplex(1e6, 0.02, p_good=0.5, p_bad=0.5, seed=3)
        f_losses = forward.loss_model.losses(100)
        b_losses = feedback.loss_model.losses(100)
        assert f_losses != b_losses

    def test_negative_rtt(self):
        with pytest.raises(NetworkError):
            make_duplex(1e6, -1, p_good=0.9, p_bad=0.5)
