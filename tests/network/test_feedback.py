"""Tests for ACK feedback (repro.network.feedback)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.network.feedback import Feedback, FeedbackCollector


class TestFeedback:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            Feedback(sequence=-1, window_index=0)
        with pytest.raises(ProtocolError):
            Feedback(sequence=0, window_index=-1)
        with pytest.raises(ProtocolError):
            Feedback(sequence=0, window_index=0, burst_estimates={0: -1})
        with pytest.raises(ProtocolError):
            Feedback(sequence=0, window_index=0, loss_rates={0: 1.5})

    def test_valid(self):
        feedback = Feedback(
            sequence=3, window_index=2, burst_estimates={0: 4}, loss_rates={0: 0.2}
        )
        assert feedback.burst_estimates[0] == 4


class TestCollector:
    def test_newest_wins(self):
        collector = FeedbackCollector()
        assert collector.offer(Feedback(sequence=0, window_index=0))
        assert collector.offer(Feedback(sequence=2, window_index=2))
        assert not collector.offer(Feedback(sequence=1, window_index=1))
        assert collector.latest.sequence == 2
        assert collector.received == 3
        assert collector.ignored_stale == 1

    def test_equal_sequence_ignored(self):
        collector = FeedbackCollector()
        collector.offer(Feedback(sequence=1, window_index=1))
        assert not collector.offer(Feedback(sequence=1, window_index=1))

    def test_burst_for_layer_defaults(self):
        collector = FeedbackCollector()
        assert collector.burst_for_layer(0, default=7) == 7
        collector.offer(
            Feedback(sequence=0, window_index=0, burst_estimates={1: 3})
        )
        assert collector.burst_for_layer(1, default=7) == 3
        assert collector.burst_for_layer(9, default=7) == 7
