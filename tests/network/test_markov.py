"""Tests for the Gilbert loss model (repro.network.markov)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.markov import BAD, GOOD, GilbertModel


class TestConstruction:
    def test_starts_good(self):
        model = GilbertModel(p_good=0.9, p_bad=0.5)
        assert model.state == GOOD

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertModel(p_good=1.5, p_bad=0.5)
        with pytest.raises(ConfigurationError):
            GilbertModel(p_good=0.5, p_bad=-0.1)

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            GilbertModel(p_good=0.9, p_bad=0.5).losses(-1)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        b = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        assert a.losses(500) == b.losses(500)

    def test_different_seeds_differ(self):
        a = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        b = GilbertModel(p_good=0.92, p_bad=0.6, seed=6)
        assert a.losses(500) != b.losses(500)

    def test_reset_replays(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        first = model.losses(100)
        model.reset()
        assert model.losses(100) == first
        assert model.state in (GOOD, BAD)

    def test_reset_with_new_seed(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=5)
        first = model.losses(100)
        model.reset(seed=9)
        assert model.losses(100) != first


class TestExtremes:
    def test_never_lossy(self):
        model = GilbertModel(p_good=1.0, p_bad=0.0)
        assert not any(model.losses(200))
        assert model.stationary_loss_rate == 0.0

    def test_absorbing_bad_state(self):
        model = GilbertModel(p_good=0.0, p_bad=1.0)
        losses = model.losses(50)
        assert all(losses)
        assert model.mean_burst_length == float("inf")

    def test_mean_good_run_infinite(self):
        assert GilbertModel(p_good=1.0, p_bad=0.5).mean_good_run == float("inf")


class TestStatistics:
    def test_stationary_rate_formula(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6)
        assert model.stationary_loss_rate == pytest.approx(0.08 / (0.08 + 0.4))

    def test_empirical_loss_rate(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=11)
        losses = model.losses(60_000)
        rate = sum(losses) / len(losses)
        assert rate == pytest.approx(model.stationary_loss_rate, abs=0.02)

    def test_empirical_burst_length(self):
        model = GilbertModel(p_good=0.92, p_bad=0.7, seed=13)
        losses = model.losses(60_000)
        runs, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean = sum(runs) / len(runs)
        assert mean == pytest.approx(model.mean_burst_length, rel=0.1)

    def test_expected_burst_in_window_bounds(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6)
        for window in (1, 10, 100):
            estimate = model.expected_burst_in_window(window)
            assert 1 <= estimate <= window
        assert model.expected_burst_in_window(0) == 0

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=40)
    def test_stationary_rate_in_unit_interval(self, p_good, p_bad):
        model = GilbertModel(p_good=p_good, p_bad=p_bad)
        assert 0.0 <= model.stationary_loss_rate <= 1.0
