"""Property tests for GF(256) arithmetic (repro.protocols.gf256)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.protocols.gf256 import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    mat_inv,
    mat_mul,
    mat_vec,
    solve,
    vandermonde,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert gf_add(a, b) == (a ^ b) == gf_add(b, a)

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert gf_add(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_one_is_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_zero_inverse_rejected(self):
        with pytest.raises(CodingError):
            gf_inv(0)
        with pytest.raises(CodingError):
            gf_div(1, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(CodingError):
            gf_mul(256, 1)
        with pytest.raises(CodingError):
            gf_add(-1, 0)


class TestPow:
    @given(nonzero, st.integers(min_value=0, max_value=20))
    def test_matches_repeated_multiplication(self, a, k):
        expected = 1
        for _ in range(k):
            expected = gf_mul(expected, a)
        assert gf_pow(a, k) == expected

    @given(nonzero)
    def test_negative_exponent(self, a):
        assert gf_mul(gf_pow(a, -1), a) == 1

    def test_zero_cases(self):
        assert gf_pow(0, 3) == 0
        with pytest.raises(CodingError):
            gf_pow(0, 0)


class TestLinearAlgebra:
    def test_vandermonde_shape(self):
        v = vandermonde(3, 2)
        assert v == [[1, 1], [1, 2], [1, 3]]

    def test_vandermonde_validation(self):
        with pytest.raises(CodingError):
            vandermonde(0, 2)
        with pytest.raises(CodingError):
            vandermonde(300, 2)

    def test_mat_vec(self):
        assert mat_vec([[1, 0], [0, 1]], [5, 9]) == [5, 9]

    def test_mat_vec_mismatch(self):
        with pytest.raises(CodingError):
            mat_vec([[1, 2]], [1])

    def test_solve_identity(self):
        assert solve([[1, 0], [0, 1]], [7, 9]) == [7, 9]

    def test_solve_singular(self):
        with pytest.raises(CodingError):
            solve([[1, 1], [1, 1]], [1, 2])

    def test_mat_inv_roundtrip(self):
        import random

        rng = random.Random(0)
        for _ in range(10):
            n = rng.randrange(1, 6)
            matrix = vandermonde(n + 2, n)[:n]
            inverse = mat_inv(matrix)
            product = mat_mul(matrix, inverse)
            identity = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
            assert product == identity

    def test_mat_inv_singular(self):
        with pytest.raises(CodingError):
            mat_inv([[1, 1], [1, 1]])

    def test_mat_mul_validation(self):
        with pytest.raises(CodingError):
            mat_mul([[1, 2]], [[1, 2]])

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=30)
    def test_solve_random_systems(self, n, data):
        matrix = vandermonde(n + 1, n)[:n]
        x = [data.draw(elements) for _ in range(n)]
        rhs = mat_vec(matrix, x)
        assert solve(matrix, rhs) == x
