"""Tests for Cyclic-UDP (repro.protocols.cyclic_udp)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.network.markov import GilbertModel
from repro.protocols.cyclic_udp import (
    Chunk,
    CyclicUdpSender,
    chunks_from_priorities,
    priority_delivery_curve,
)


def lossless() -> GilbertModel:
    return GilbertModel(p_good=1.0, p_bad=0.0)


def lossy(seed=1, p_bad=0.6) -> GilbertModel:
    return GilbertModel(p_good=0.8, p_bad=p_bad, seed=seed)


class TestChunk:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            Chunk(identifier=0, priority=-1)
        with pytest.raises(ProtocolError):
            Chunk(identifier=0, priority=0, size_bytes=0)

    def test_chunks_from_priorities(self):
        chunks = chunks_from_priorities([2, 0, 1])
        assert [c.priority for c in chunks] == [2, 0, 1]
        assert [c.identifier for c in chunks] == [0, 1, 2]


class TestSender:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            CyclicUdpSender(lossless(), budget_bytes=0)
        with pytest.raises(ProtocolError):
            CyclicUdpSender(lossless(), max_passes=0)

    def test_duplicate_ids_rejected(self):
        sender = CyclicUdpSender(lossless())
        with pytest.raises(ProtocolError):
            sender.run_cycle([Chunk(0, 0), Chunk(0, 1)])

    def test_lossless_single_pass(self):
        sender = CyclicUdpSender(lossless())
        chunks = chunks_from_priorities(range(10))
        result = sender.run_cycle(chunks)
        assert result.delivered == set(range(10))
        assert result.passes == 1
        assert result.transmissions == 10

    def test_lossy_converges_with_retransmission(self):
        sender = CyclicUdpSender(lossy(seed=3))
        chunks = chunks_from_priorities(range(20))
        result = sender.run_cycle(chunks)
        assert result.delivered == set(range(20))
        assert result.passes > 1
        assert result.transmissions > 20

    def test_budget_cuts_low_priority_first(self):
        # budget for exactly 6 of 10 equal-sized chunks, no losses
        sender = CyclicUdpSender(lossless(), budget_bytes=6 * 1024)
        chunks = chunks_from_priorities(range(10))
        result = sender.run_cycle(chunks)
        curve = priority_delivery_curve(chunks, result)
        delivered = [p for p, ok in curve if ok]
        assert delivered == list(range(6))
        assert result.budget_exhausted

    def test_priority_prefix_property_under_loss(self):
        """With reliable feedback, retransmission repairs high priority
        first, so the delivered set is a priority prefix when the budget
        runs out."""
        sender = CyclicUdpSender(
            lossy(seed=5), budget_bytes=26 * 1024, max_passes=50
        )
        chunks = chunks_from_priorities(range(20))
        result = sender.run_cycle(chunks)
        curve = priority_delivery_curve(chunks, result)
        statuses = [ok for _, ok in curve]
        # once a priority is missing, everything after may be missing too;
        # but every delivered=False at priority p with delivered=True at
        # q > p can only come from in-flight losses on the last pass.
        first_missing = statuses.index(False) if False in statuses else len(statuses)
        assert all(statuses[:first_missing])

    def test_lost_feedback_wastes_a_pass(self):
        always_lost_feedback = GilbertModel(p_good=0.0, p_bad=1.0)
        sender = CyclicUdpSender(
            lossy(seed=7), always_lost_feedback, max_passes=4
        )
        chunks = chunks_from_priorities(range(10))
        result = sender.run_cycle(chunks)
        assert result.feedback_lost == result.feedback_messages
        # sender never learns; it retransmits everything each pass
        assert result.transmissions == 4 * 10

    def test_max_passes_bounds_work(self):
        dead_channel = GilbertModel(p_good=0.0, p_bad=1.0)
        sender = CyclicUdpSender(dead_channel, max_passes=3)
        chunks = chunks_from_priorities(range(5))
        result = sender.run_cycle(chunks)
        assert result.delivered == set()
        assert result.passes == 3

    def test_empty_cycle(self):
        sender = CyclicUdpSender(lossless())
        result = sender.run_cycle([])
        assert result.delivered == set()
        assert result.passes == 0


class TestComposition:
    def test_cpo_priorities_spread_budget_cuts(self):
        """Priorities from the k-CPO: when the budget cuts the tail, the
        missing frames are spread in playback order instead of being one
        consecutive block."""
        from repro.core.cpo import calculate_permutation
        from repro.core.evaluation import max_run

        n = 16
        perm = calculate_permutation(n, 8)
        # chunk i = frame i; priority = its transmission slot
        priorities = [perm.slot_of(i) for i in range(n)]
        chunks = chunks_from_priorities(priorities)
        sender = CyclicUdpSender(lossless(), budget_bytes=10 * 1024)
        result = sender.run_cycle(chunks)
        missing = [i for i in range(n) if i not in result.delivered]
        assert len(missing) == 6
        assert max_run(missing) == 1  # spread, not a block

    def test_in_order_priorities_cut_a_block(self):
        chunks = chunks_from_priorities(range(16))
        sender = CyclicUdpSender(lossless(), budget_bytes=10 * 1024)
        result = sender.run_cycle(chunks)
        from repro.core.evaluation import max_run

        missing = [i for i in range(16) if i not in result.delivered]
        assert max_run(missing) == 6  # one consecutive block lost
