"""Tests for graceful-degradation priority orders (repro.protocols.priority)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation
from repro.errors import ConfigurationError
from repro.protocols.priority import farthest_point_order, prefix_quality


class TestFarthestPointOrder:
    @given(st.integers(min_value=1, max_value=80))
    def test_is_permutation(self, n):
        assert sorted(farthest_point_order(n).order) == list(range(n))

    def test_empty(self):
        assert len(farthest_point_order(0)) == 0

    def test_negative(self):
        with pytest.raises(ConfigurationError):
            farthest_point_order(-1)

    def test_doctest_head(self):
        assert list(farthest_point_order(8).order)[:2] == [0, 4]

    def test_prefixes_spread(self):
        perm = farthest_point_order(16)
        quality = prefix_quality(perm)
        # Keeping 4 frames must leave gaps no worse than ~2x ideal.
        # ideal with 4 survivors of 16: runs of (16-4)/5 ~ 3
        assert quality[3] <= 7

    def test_better_than_identity(self):
        n = 16
        fpo = prefix_quality(farthest_point_order(n))
        identity = prefix_quality(Permutation.identity(n))
        # midway through, farthest-point is much better
        assert fpo[n // 2] < identity[n // 2]


class TestPrefixQuality:
    def test_monotone_non_increasing(self):
        perm = farthest_point_order(20)
        quality = prefix_quality(perm)
        assert all(a >= b for a, b in zip(quality, quality[1:]))

    def test_last_entry_zero(self):
        assert prefix_quality(farthest_point_order(10))[-1] == 0

    def test_identity_quality(self):
        quality = prefix_quality(Permutation.identity(5))
        assert quality == [4, 3, 2, 1, 0]
