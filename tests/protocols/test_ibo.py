"""Tests for Inverse Binary Order (repro.protocols.ibo)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation
from repro.errors import ConfigurationError
from repro.protocols.ibo import (
    bit_reverse,
    ibo_priority,
    inverse_binary_order,
    tail_loss_clf,
)


class TestBitReverse:
    def test_examples(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 4) == 0

    def test_involution(self):
        for bits in range(1, 8):
            for value in range(1 << bits):
                assert bit_reverse(bit_reverse(value, bits), bits) == value

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bit_reverse(8, 3)
        with pytest.raises(ConfigurationError):
            bit_reverse(-1, 3)


class TestInverseBinaryOrder:
    def test_paper_table2_order(self):
        # Paper (1-based): 01 05 03 07 02 06 04 08
        assert list(inverse_binary_order(8).order) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_power_of_two_16(self):
        order = inverse_binary_order(16).order
        assert order[:4] == (0, 8, 4, 12)

    @given(st.integers(min_value=1, max_value=100))
    def test_is_permutation(self, n):
        assert sorted(inverse_binary_order(n).order) == list(range(n))

    def test_empty(self):
        assert len(inverse_binary_order(0)) == 0

    def test_negative(self):
        with pytest.raises(ConfigurationError):
            inverse_binary_order(-1)

    def test_non_power_of_two(self):
        order = inverse_binary_order(6).order
        assert sorted(order) == list(range(6))
        assert order[0] == 0

    def test_priority_ranks(self):
        ranks = ibo_priority(8)
        assert ranks[0] == 0   # frame 0 sent first
        assert ranks[4] == 1   # frame 4 second


class TestTailLoss:
    def test_zero_losses(self):
        assert tail_loss_clf(inverse_binary_order(8), 0) == 0

    def test_all_lost(self):
        assert tail_loss_clf(inverse_binary_order(8), 8) == 8

    def test_clamps(self):
        assert tail_loss_clf(inverse_binary_order(8), 99) == 8

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            tail_loss_clf(inverse_binary_order(8), -1)

    def test_ibo_good_below_half(self):
        perm = inverse_binary_order(16)
        for lost in range(1, 8):
            assert tail_loss_clf(perm, lost) <= 2

    def test_ibo_degrades_above_half(self):
        perm = inverse_binary_order(8)
        assert tail_loss_clf(perm, 5) >= 3

    def test_in_order_worst_case(self):
        perm = Permutation.identity(8)
        # tail of the identity = last frames: one consecutive run
        assert tail_loss_clf(perm, 5) == 5
