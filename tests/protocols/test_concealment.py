"""Tests for receiver concealment (repro.protocols.concealment)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.protocols.concealment import conceal, freeze_lengths, report


class TestConceal:
    def test_all_received(self):
        records = conceal(range(5), 5)
        assert all(not r.is_unit_loss for r in records)

    def test_gap_repeats_last_frame(self):
        records = conceal([0, 3, 4], 5)
        assert records[1].repeated and records[1].ldu_index == 0
        assert records[2].repeated and records[2].ldu_index == 0
        assert records[3].ldu_index == 3

    def test_leading_gap_unconcealable(self):
        records = conceal([2], 4)
        assert records[0].lost and not records[0].repeated
        assert records[1].lost
        assert records[3].repeated

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            conceal([5], 3)
        with pytest.raises(ConfigurationError):
            conceal([], -1)

    def test_empty(self):
        assert conceal([], 0) == []


class TestFreezeLengths:
    def test_runs(self):
        records = conceal([0, 3, 4, 7], 9)
        assert freeze_lengths(records) == [2, 2, 1]

    def test_trailing_run_counted(self):
        records = conceal([0], 4)
        assert freeze_lengths(records) == [3]

    def test_no_losses(self):
        assert freeze_lengths(conceal(range(3), 3)) == []


class TestReport:
    def test_counts(self):
        records = conceal([2, 3], 5)
        result = report(records)
        assert result.concealed == 1        # slot 4 repeats frame 3
        assert result.unconcealable == 2    # slots 0, 1 before first arrival
        assert result.max_freeze == 2
        assert result.slots == 5

    def test_perfect_rate(self):
        result = report(conceal(range(4), 4))
        assert result.concealment_rate == 1.0

    def test_spread_losses_freeze_less_than_burst(self):
        burst = report(conceal([0, 1, 2, 6, 7], 8))
        spread = report(conceal([0, 2, 4, 5, 7], 8))
        assert spread.max_freeze < burst.max_freeze
