"""Tests for the Figure-4 block study (repro.protocols.composed, .base)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import (
    ALL_BLOCKS,
    BLOCK_A,
    BLOCK_B,
    BLOCK_C,
    BLOCK_D,
    Ordering,
    Redundancy,
    SchemeSpec,
)
from repro.protocols.composed import compare_blocks, run_block_study
from repro.protocols.fec import FecPolicy


class TestSchemeSpec:
    def test_fec_default_policy(self):
        assert BLOCK_C.fec is not None

    def test_labels(self):
        assert BLOCK_A.label == "in-order+none"
        assert BLOCK_D.label == "spread+none"

    def test_all_blocks_complete(self):
        assert set(ALL_BLOCKS) == set("ABCDEF")

    def test_negative_retransmissions(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec(Ordering.IN_ORDER, Redundancy.RETRANSMIT, max_retransmissions=-1)


class TestRunBlockStudy:
    def test_lossless_channel_perfect(self):
        result = run_block_study(
            BLOCK_A, window=12, windows=10, p_good=1.0, p_bad=0.0
        )
        assert result.mean_clf == 0.0
        assert result.mean_overhead == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_block_study(BLOCK_A, window=0)
        with pytest.raises(ConfigurationError):
            run_block_study(BLOCK_A, windows=0)

    def test_no_redundancy_zero_overhead(self):
        for spec in (BLOCK_A, BLOCK_D):
            result = run_block_study(spec, window=16, windows=20, p_bad=0.6, seed=2)
            assert result.mean_overhead == 0.0

    def test_retransmission_recovers(self):
        naive = run_block_study(BLOCK_A, window=16, windows=50, p_bad=0.6, seed=2)
        retx = run_block_study(BLOCK_B, window=16, windows=50, p_bad=0.6, seed=2)
        assert retx.mean_clf < naive.mean_clf
        assert retx.mean_overhead > 0.0

    def test_fec_policy_respected(self):
        spec = SchemeSpec(
            Ordering.IN_ORDER,
            Redundancy.FEC,
            fec=FecPolicy(group_size=4, parity_count=2),
        )
        result = run_block_study(spec, window=16, windows=20, p_bad=0.6, seed=2)
        assert result.mean_overhead == pytest.approx(0.5)

    def test_spreading_beats_naive_same_loss(self):
        naive = run_block_study(BLOCK_A, window=24, windows=150, p_bad=0.6, seed=7)
        spread = run_block_study(BLOCK_D, window=24, windows=150, p_bad=0.6, seed=7)
        assert spread.mean_clf < naive.mean_clf
        # Identical channel and no redundancy: same slots, same losses.
        assert [w.lost_slots for w in spread.windows] == [
            w.lost_slots for w in naive.windows
        ]

    def test_window_accounting(self):
        result = run_block_study(BLOCK_B, window=12, windows=10, p_bad=0.5, seed=1)
        for w in result.windows:
            assert w.slots_used >= w.frames
            assert 0 <= w.unit_losses <= w.frames
            assert w.clf <= w.unit_losses

    def test_describe(self):
        result = run_block_study(BLOCK_A, window=8, windows=5, seed=1)
        assert "in-order+none" in result.describe()


class TestCompareBlocks:
    def test_returns_all(self):
        results = compare_blocks(ALL_BLOCKS, window=12, windows=20, seed=3)
        assert set(results) == set(ALL_BLOCKS)

    def test_ibo_ordering_runs(self):
        spec = SchemeSpec(Ordering.IBO, Redundancy.NONE)
        result = run_block_study(spec, window=16, windows=10, seed=1)
        assert len(result.windows) == 10
