"""Tests for FEC erasure codes (repro.protocols.fec)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.protocols.fec import FecPolicy, ReedSolomonErasure, XorParity


def random_blocks(count: int, length: int, seed: int = 0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(count)]


class TestXorParity:
    def test_recovers_any_single_loss(self):
        xor = XorParity(5)
        blocks = random_blocks(5, 40)
        parity = xor.encode(blocks)
        for missing in range(5):
            damaged = list(blocks)
            damaged[missing] = None
            assert xor.decode(damaged, parity) == blocks

    def test_no_loss_passthrough(self):
        xor = XorParity(3)
        blocks = random_blocks(3, 10)
        assert xor.decode(blocks, xor.encode(blocks)) == blocks

    def test_two_losses_rejected(self):
        xor = XorParity(3)
        blocks = random_blocks(3, 10)
        parity = xor.encode(blocks)
        damaged = [None, None, blocks[2]]
        with pytest.raises(CodingError):
            xor.decode(damaged, parity)

    def test_lost_parity_with_lost_block_rejected(self):
        xor = XorParity(3)
        blocks = random_blocks(3, 10)
        damaged = [None, blocks[1], blocks[2]]
        with pytest.raises(CodingError):
            xor.decode(damaged, None)

    def test_wrong_group_size(self):
        with pytest.raises(CodingError):
            XorParity(3).encode(random_blocks(2, 10))

    def test_unequal_lengths(self):
        with pytest.raises(CodingError):
            XorParity(2).encode([b"aa", b"a"])

    def test_overhead(self):
        assert XorParity(4).overhead == 0.25

    def test_invalid_k(self):
        with pytest.raises(CodingError):
            XorParity(0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=32))
    @settings(max_examples=30)
    def test_parity_of_identical_blocks(self, k, length):
        xor = XorParity(k)
        blocks = [bytes(length)] * k
        assert xor.encode(blocks) == bytes(length)


class TestReedSolomon:
    def test_exhaustive_small(self):
        rs = ReedSolomonErasure(4, 2)
        blocks = random_blocks(4, 24, seed=2)
        parities = rs.encode(blocks)
        for lost in itertools.combinations(range(6), 2):
            damaged = [b if i not in lost else None for i, b in enumerate(blocks)]
            damaged_parity = [
                p if (i + 4) not in lost else None for i, p in enumerate(parities)
            ]
            assert rs.decode(damaged, damaged_parity) == blocks

    def test_capacity_exceeded(self):
        rs = ReedSolomonErasure(4, 1)
        blocks = random_blocks(4, 8)
        parities = rs.encode(blocks)
        damaged = [None, None, blocks[2], blocks[3]]
        with pytest.raises(CodingError):
            rs.decode(damaged, parities)

    def test_parity_loss_consumes_capacity(self):
        rs = ReedSolomonErasure(3, 2)
        blocks = random_blocks(3, 8)
        parities = rs.encode(blocks)
        # two data losses + one parity loss = 3 erasures > r = 2
        damaged = [None, None, blocks[2]]
        damaged_parity = [None, parities[1]]
        with pytest.raises(CodingError):
            rs.decode(damaged, damaged_parity)

    def test_r_zero(self):
        rs = ReedSolomonErasure(3, 0)
        blocks = random_blocks(3, 8)
        assert rs.encode(blocks) == []
        assert rs.decode(blocks, []) == blocks

    def test_validation(self):
        with pytest.raises(CodingError):
            ReedSolomonErasure(0, 1)
        with pytest.raises(CodingError):
            ReedSolomonErasure(200, 100)
        rs = ReedSolomonErasure(2, 1)
        with pytest.raises(CodingError):
            rs.encode(random_blocks(3, 4))
        with pytest.raises(CodingError):
            rs.decode([None, None, None], [b"x"])  # wrong slot counts

    def test_overhead(self):
        assert ReedSolomonErasure(8, 2).overhead == 0.25

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=16),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_erasures_recover(self, k, r, length, rng):
        rs = ReedSolomonErasure(k, r)
        blocks = [
            bytes(rng.randrange(256) for _ in range(length)) for _ in range(k)
        ]
        parities = rs.encode(blocks)
        erasures = rng.sample(range(k + r), min(r, k + r))
        damaged = [b if i not in erasures else None for i, b in enumerate(blocks)]
        damaged_parity = [
            p if (i + k) not in erasures else None for i, p in enumerate(parities)
        ]
        assert rs.decode(damaged, damaged_parity) == blocks


class TestFecPolicy:
    def test_recoverable_rule(self):
        policy = FecPolicy(group_size=8, parity_count=2)
        assert policy.recoverable(0)
        assert policy.recoverable(2)
        assert not policy.recoverable(3)

    def test_overhead(self):
        assert FecPolicy(group_size=8, parity_count=1).overhead == 0.125

    def test_validation(self):
        with pytest.raises(CodingError):
            FecPolicy(group_size=0)
        with pytest.raises(CodingError):
            FecPolicy(parity_count=-1)
