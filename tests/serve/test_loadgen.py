"""Tests for the seeded load generator (repro.serve.loadgen)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.loadgen import LoadSpec, generate_requests


class TestDeterminism:
    def test_same_spec_same_fleet(self):
        a = generate_requests(LoadSpec(sessions=5, seed=3))
        b = generate_requests(LoadSpec(sessions=5, seed=3))
        assert [r.session_id for r in a] == [r.session_id for r in b]
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [r.config.seed for r in a] == [r.config.seed for r in b]
        assert [r.priority for r in a] == [r.priority for r in b]

    def test_different_seeds_differ(self):
        a = generate_requests(LoadSpec(sessions=5, seed=3))
        b = generate_requests(LoadSpec(sessions=5, seed=4))
        assert [r.config.seed for r in a] != [r.config.seed for r in b]

    def test_channel_seeds_unique_within_fleet(self):
        requests = generate_requests(LoadSpec(sessions=8, seed=0))
        seeds = [r.config.seed for r in requests]
        assert len(set(seeds)) == len(seeds)


class TestShape:
    def test_arrivals_monotone(self):
        requests = generate_requests(LoadSpec(sessions=6, seed=1))
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_zero_interarrival_means_simultaneous(self):
        requests = generate_requests(
            LoadSpec(sessions=4, seed=1, mean_interarrival=0.0)
        )
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_priority_fraction_extremes(self):
        low = generate_requests(
            LoadSpec(sessions=6, seed=2, high_priority_fraction=0.0)
        )
        high = generate_requests(
            LoadSpec(sessions=6, seed=2, high_priority_fraction=1.0)
        )
        assert all(r.priority == 0 and r.weight == 1.0 for r in low)
        assert all(r.priority == 1 and r.weight == 2.0 for r in high)

    def test_max_windows_propagates(self):
        requests = generate_requests(LoadSpec(sessions=2, seed=0, max_windows=3))
        assert all(r.max_windows == 3 for r in requests)


class TestValidation:
    def test_sessions_positive(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(sessions=0)

    def test_interarrival_non_negative(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(mean_interarrival=-1.0)

    def test_priority_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(high_priority_fraction=1.5)
