"""Tests for admission control (repro.serve.admission)."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig
from repro.errors import ConfigurationError
from repro.media.gop import GopPattern
from repro.media.stream import MediaStream, make_video_stream
from repro.serve.admission import AdmissionController, estimate_demand
from repro.serve.bandwidth import FairShareScheduler, SessionDemand

IBBP = GopPattern.parse("IBBP")


def small_config():
    return ProtocolConfig(gops_per_window=1, gop_size=4)


class TestEstimateDemand:
    def test_hand_computed_constant_sizes(self):
        """One IBBP GOP per window at the default constant sizes.

        Window bits: I(150k) + B(20k) + B(20k) + P(60k) = 250k over a
        4/24 s cycle -> 1.5 Mbps full; anchors I + P = 210k -> 1.26 Mbps
        critical.
        """
        stream = make_video_stream(IBBP, gop_count=3, fps=24.0)
        full, critical = estimate_demand(stream, small_config())
        assert full == pytest.approx(250_000 * 6)
        assert critical == pytest.approx(210_000 * 6)

    def test_peak_window_dominates(self):
        """Demand is the peak over windows, not the average."""
        sizes = [150_000, 20_000, 20_000, 60_000] + [300_000, 40_000, 40_000, 120_000]
        stream = make_video_stream(IBBP, gop_count=2, sizes_bits=sizes, fps=24.0)
        full, critical = estimate_demand(stream, small_config())
        assert full == pytest.approx(500_000 * 6)
        assert critical == pytest.approx(420_000 * 6)

    def test_max_windows_limits_the_scan(self):
        sizes = [150_000, 20_000, 20_000, 60_000] + [300_000, 40_000, 40_000, 120_000]
        stream = make_video_stream(IBBP, gop_count=2, sizes_bits=sizes, fps=24.0)
        full, _ = estimate_demand(stream, small_config(), max_windows=1)
        assert full == pytest.approx(250_000 * 6)

    def test_empty_stream_rejected(self):
        with pytest.raises(Exception):
            estimate_demand(MediaStream(ldus=()), small_config())


def demand(sid, full=1_200_000.0, critical=600_000.0, **kwargs):
    return SessionDemand(
        session_id=sid,
        demand_bps=max(full, critical),
        critical_bps=critical,
        **kwargs,
    )


class TestAdmissionController:
    def controller(self, capacity=2_400_000.0, headroom=0.0):
        return AdmissionController(
            FairShareScheduler(), capacity, headroom=headroom
        )

    def test_admits_while_critical_fits(self):
        controller = self.controller()
        decision = controller.evaluate([demand("a")], demand("b"))
        assert decision.admitted
        assert decision.share_bps == pytest.approx(1_200_000.0)

    def test_rejects_when_candidate_would_starve(self):
        controller = self.controller()
        active = [demand("a"), demand("b"), demand("c")]
        decision = controller.evaluate(active, demand("d"))
        # Fair share of 2.4 Mbps over four is 600 kbps == the critical
        # floor, so four still fit; a fifth cannot.
        assert decision.admitted
        decision = controller.evaluate(active + [demand("d")], demand("e"))
        assert not decision.admitted
        assert "critical demand" in decision.reason

    def test_rejection_protects_existing_sessions(self):
        """A newcomer is refused when *anyone's* floor would break."""
        controller = self.controller()
        active = [demand("greedy", critical=1_500_000.0)]
        decision = controller.evaluate(active, demand("new", critical=100_000.0))
        assert not decision.admitted
        assert "greedy" in decision.reason

    def test_headroom_reserves_retransmission_slack(self):
        tight = self.controller(headroom=0.0)
        padded = self.controller(headroom=0.5)
        active = [demand("a"), demand("b"), demand("c")]
        assert tight.evaluate(active, demand("d")).admitted
        assert not padded.evaluate(active, demand("d")).admitted

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(FairShareScheduler(), 0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(FairShareScheduler(), 1.0, headroom=-0.1)
