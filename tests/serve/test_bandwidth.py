"""Tests for the bottleneck bandwidth schedulers (repro.serve.bandwidth)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.bandwidth import (
    FairShareScheduler,
    PriorityScheduler,
    SessionDemand,
    make_scheduler,
)


def demand(sid, full=1_200_000.0, critical=None, weight=1.0, priority=0):
    return SessionDemand(
        session_id=sid,
        demand_bps=full,
        critical_bps=full / 2 if critical is None else critical,
        weight=weight,
        priority=priority,
    )


class TestFairShare:
    def test_equal_split(self):
        shares = FairShareScheduler().allocate(
            [demand("a"), demand("b"), demand("c")], 3_000_000.0
        )
        assert shares == {"a": 1_000_000.0, "b": 1_000_000.0, "c": 1_000_000.0}

    def test_single_session_gets_everything(self):
        shares = FairShareScheduler().allocate([demand("a")], 2_400_000.0)
        assert shares == {"a": 2_400_000.0}

    def test_empty_active_set(self):
        assert FairShareScheduler().allocate([], 1_000_000.0) == {}

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FairShareScheduler().allocate([demand("a")], 0.0)


class TestPriority:
    def test_higher_class_satisfied_first(self):
        demands = [
            demand("hi", full=900_000.0, priority=1),
            demand("lo", full=900_000.0, priority=0),
        ]
        shares = PriorityScheduler().allocate(demands, 1_200_000.0)
        assert shares["hi"] == 900_000.0  # met in full
        assert shares["lo"] == pytest.approx(300_000.0)  # the leftovers

    def test_lowest_class_absorbs_surplus(self):
        """Capacity beyond every higher class's demand is never parked."""
        demands = [
            demand("hi", full=400_000.0, priority=1),
            demand("lo", full=100_000.0, priority=0),
        ]
        shares = PriorityScheduler().allocate(demands, 2_000_000.0)
        assert shares["hi"] == 400_000.0
        assert shares["lo"] == pytest.approx(1_600_000.0)

    def test_starved_class_gets_zero(self):
        demands = [
            demand("a", full=1_000_000.0, priority=2),
            demand("b", full=1_000_000.0, priority=1),
            demand("c", full=1_000_000.0, priority=0),
        ]
        shares = PriorityScheduler().allocate(demands, 1_000_000.0)
        assert shares["a"] == 1_000_000.0
        assert shares["b"] == 0.0
        assert shares["c"] == 0.0

    def test_weighted_water_filling_within_class(self):
        demands = [
            demand("w1", full=2_000_000.0, weight=1.0, priority=1),
            demand("w3", full=2_000_000.0, weight=3.0, priority=1),
            demand("lo", full=500_000.0, priority=0),
        ]
        shares = PriorityScheduler().allocate(demands, 1_000_000.0)
        assert shares["w1"] == pytest.approx(250_000.0)
        assert shares["w3"] == pytest.approx(750_000.0)
        assert shares["lo"] == 0.0

    def test_water_fill_frees_surplus_of_met_members(self):
        demands = [
            demand("small", full=100_000.0, priority=1),
            demand("big", full=5_000_000.0, priority=1),
            demand("lo", full=500_000.0, priority=0),
        ]
        shares = PriorityScheduler().allocate(demands, 1_000_000.0)
        assert shares["small"] == 100_000.0
        assert shares["big"] == pytest.approx(900_000.0)

    def test_deterministic_under_input_order(self):
        demands = [
            demand("a", full=700_000.0, priority=1),
            demand("b", full=900_000.0, weight=2.0, priority=1),
            demand("c", full=400_000.0, priority=0),
        ]
        forward = PriorityScheduler().allocate(demands, 1_500_000.0)
        backward = PriorityScheduler().allocate(demands[::-1], 1_500_000.0)
        assert forward == backward

    def test_single_class_splits_whole_capacity_by_weight(self):
        demands = [demand("a"), demand("b", weight=2.0)]
        shares = PriorityScheduler().allocate(demands, 900_000.0)
        assert shares["a"] == pytest.approx(300_000.0)
        assert shares["b"] == pytest.approx(600_000.0)


class TestSessionDemand:
    def test_critical_cannot_exceed_full(self):
        with pytest.raises(ConfigurationError):
            SessionDemand("x", demand_bps=1.0, critical_bps=2.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionDemand("x", demand_bps=-1.0, critical_bps=0.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionDemand("x", demand_bps=1.0, critical_bps=0.0, weight=0.0)


class TestFactory:
    def test_by_name(self):
        assert isinstance(make_scheduler("fair"), FairShareScheduler)
        assert isinstance(make_scheduler("priority"), PriorityScheduler)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("round-robin")
