"""Tests for the layered load-shedding policy (repro.serve.shedding)."""

from __future__ import annotations

import pytest

from repro.core.layered import LayeredScheduler
from repro.errors import ConfigurationError
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.network.estimation import GilbertEstimator
from repro.poset.builders import ldu_poset
from repro.serve.shedding import LayeredShedPolicy

FPS = 24.0


@pytest.fixture(scope="module")
def window():
    stream = make_video_stream(GOP_12, gop_count=1, fps=FPS)
    return tuple(stream.ldus)


@pytest.fixture(scope="module")
def plan(window):
    return LayeredScheduler(ldu_poset(window)).plan({}, scramble=True)


def window_bps(window):
    """The bandwidth that exactly carries the window in one cycle."""
    cycle = len(window) / FPS
    return sum(ldu.size_bits for ldu in window) / cycle


class TestSelect:
    def test_no_shed_at_native_bandwidth(self, window, plan):
        policy = LayeredShedPolicy()
        native = window_bps(window)
        assert (
            policy.select(window, plan, native, FPS, native_bps=native)
            == frozenset()
        )

    def test_no_shed_above_native(self, window, plan):
        policy = LayeredShedPolicy()
        native = window_bps(window)
        assert (
            policy.select(window, plan, native * 2, FPS, native_bps=native)
            == frozenset()
        )

    def test_sheds_only_non_critical_frames(self, window, plan):
        policy = LayeredShedPolicy()
        shed = policy.select(window, plan, window_bps(window) * 0.7, FPS)
        assert shed
        anchors = {i for i, ldu in enumerate(window) if ldu.frame_type.is_anchor}
        assert not (shed & anchors)

    def test_anchors_survive_any_squeeze(self, window, plan):
        policy = LayeredShedPolicy()
        shed = policy.select(window, plan, 1.0, FPS)
        anchors = {i for i, ldu in enumerate(window) if ldu.frame_type.is_anchor}
        assert not (shed & anchors)
        # everything non-critical is gone
        assert shed == set(range(len(window))) - anchors

    def test_sheds_deepest_layer_first(self, window, plan):
        """A mild squeeze takes frames from the last (deepest) layer only."""
        policy = LayeredShedPolicy(headroom=0.0)
        sizes = [ldu.size_bits for ldu in window]
        deepest = plan.layers[-1]
        assert not deepest.critical
        cycle = len(window) / FPS
        # Air time for everything except one deepest-layer frame.
        squeeze = (sum(sizes) - min(sizes[o] for o in deepest.members)) / cycle
        shed = policy.select(window, plan, squeeze, FPS)
        assert shed
        assert shed <= set(deepest.members)

    def test_sheds_from_tail_of_permuted_sequence(self, window, plan):
        """Survivors keep the error-spread arrangement: shedding eats
        the permuted transmission sequence from its tail."""
        policy = LayeredShedPolicy(headroom=0.0)
        shed = policy.select(window, plan, window_bps(window) * 0.8, FPS)
        assert shed
        layer, perm = plan.layers[-1], plan.permutations[-1]
        sequence = [layer.members[frame] for frame in perm.order]
        in_layer = [offset for offset in sequence if offset in shed]
        if in_layer:
            assert in_layer == sequence[-len(in_layer):]

    def test_more_bandwidth_sheds_no_more(self, window, plan):
        policy = LayeredShedPolicy()
        native = window_bps(window)
        lighter = policy.select(window, plan, native * 0.9, FPS)
        heavier = policy.select(window, plan, native * 0.6, FPS)
        assert len(lighter) <= len(heavier)


class TestReserve:
    def test_headroom_floor(self):
        policy = LayeredShedPolicy(headroom=0.1)
        assert policy.reserve_bits(1000.0, 0.0, None) == pytest.approx(100.0)

    def test_estimator_raises_reserve_for_lossy_channels(self):
        policy = LayeredShedPolicy(headroom=0.01)
        estimator = GilbertEstimator()
        # 20 losses in 100 slots over 10 runs: loss rate 0.2, mean burst 2.
        estimator.observe_counts(lost=20, total=100, runs=10)
        with_estimate = policy.reserve_bits(10_000.0, 5_000.0, estimator)
        without = policy.reserve_bits(10_000.0, 5_000.0, None)
        assert with_estimate > without

    def test_reserve_capped(self):
        policy = LayeredShedPolicy(headroom=0.01, reserve_cap=0.3)
        estimator = GilbertEstimator()
        # A nearly-absorbing BAD state must not reserve the whole cycle.
        estimator.observe_counts(lost=99, total=100, runs=1)
        reserve = policy.reserve_bits(10_000.0, 10_000.0, estimator)
        assert reserve <= 3_000.0


class TestValidation:
    def test_headroom_bounds(self):
        with pytest.raises(ConfigurationError):
            LayeredShedPolicy(headroom=1.0)
        with pytest.raises(ConfigurationError):
            LayeredShedPolicy(headroom=-0.1)

    def test_retry_cap_bounds(self):
        with pytest.raises(ConfigurationError):
            LayeredShedPolicy(retry_cap=0.5)

    def test_reserve_cap_bounds(self):
        with pytest.raises(ConfigurationError):
            LayeredShedPolicy(reserve_cap=1.0)
