"""Tests for the streaming service itself (repro.serve.service)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.protocol import ProtocolConfig
from repro.errors import ConfigurationError
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.serve import (
    LoadSpec,
    SessionRequest,
    StreamingService,
    build_service_manifest,
    generate_requests,
    serve_sessions,
)

CAPACITY = 2_400_000.0


def fleet(sessions=4, seed=5, **kwargs):
    return generate_requests(
        LoadSpec(
            sessions=sessions, seed=seed, gop_count=4, max_windows=4, **kwargs
        )
    )


class TestLifecycle:
    def test_all_outcomes_recorded(self):
        requests = fleet(4)
        result = serve_sessions(requests, CAPACITY)
        assert len(result.outcomes) == len(requests)
        for outcome in result.admitted:
            assert outcome.result is not None
            # 4 GOPs of GOP-12 = 48 frames = 2 windows of 24
            assert len(outcome.result.windows) == 2
        for outcome in result.rejected:
            assert outcome.result is None
            assert outcome.reason

    def test_duplicate_session_id_rejected(self):
        stream = make_video_stream(GOP_12, gop_count=2)
        config = ProtocolConfig()
        requests = [
            SessionRequest(
                session_id="dup", stream=stream, config=config, max_windows=2
            )
            for _ in range(2)
        ]
        service = StreamingService(CAPACITY)
        service.submit_all(requests)
        with pytest.raises(ConfigurationError):
            service.run()

    def test_submit_after_run_rejected(self):
        service = StreamingService(CAPACITY)
        service.submit_all(fleet(1))
        service.run()
        with pytest.raises(ConfigurationError):
            service.submit(fleet(1, seed=6)[0])

    def test_empty_session_id_rejected(self):
        stream = make_video_stream(GOP_12, gop_count=2)
        with pytest.raises(ConfigurationError):
            SessionRequest(session_id="", stream=stream, config=ProtocolConfig())

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingService(0.0)


class TestContention:
    def test_overload_sheds_b_frames_not_anchors(self):
        result = serve_sessions(fleet(8), CAPACITY)
        assert result.shed_total > 0
        for outcome in result.admitted:
            for window in outcome.result.windows:
                assert window.shed <= window.dropped_at_sender
                # anchors (offsets 0 and the P frames) stay decodable
                # whenever the channel cooperated; at minimum the shed
                # set never includes the I frame's offset 0 slot unless
                # the channel lost it.
                assert window.sent + window.dropped_at_sender == window.frames

    def test_shedding_beats_baseline_under_overload(self):
        requests = fleet(8)
        shed = serve_sessions(requests, CAPACITY, shedding=True, admission=True)
        base = serve_sessions(requests, CAPACITY, shedding=False, admission=False)
        assert shed.mean_clf <= base.mean_clf
        assert base.shed_total == 0

    def test_admission_bounds_the_active_set(self):
        result = serve_sessions(fleet(10), CAPACITY)
        # 2.4 Mbps cannot carry ten 1.2 Mbps-provisioned sessions'
        # critical layers; somebody must have been refused.
        assert result.rejected
        assert len(result.admitted) + len(result.rejected) == 10

    def test_min_share_tracks_worst_split(self):
        result = serve_sessions(fleet(4, mean_interarrival=0.0), CAPACITY)
        for outcome in result.admitted:
            assert outcome.min_share_bps <= CAPACITY / len(result.admitted) + 1e-6
            assert outcome.min_share_bps > 0

    def test_no_contention_no_shedding(self):
        result = serve_sessions(fleet(2), CAPACITY)
        assert result.shed_total == 0
        assert len(result.admitted) == 2


class TestObservability:
    def test_counters_and_manifest(self):
        obs.enable()
        obs.reset()
        try:
            result = serve_sessions(fleet(6), CAPACITY)
            snapshot = obs.snapshot()
            counters = snapshot["counters"]
            assert counters["serve.sessions_submitted"] == 6
            assert (
                counters.get("serve.sessions_admitted", 0)
                + counters.get("serve.sessions_rejected", 0)
                == 6
            )
            assert counters.get("serve.sessions_completed", 0) == len(
                result.admitted
            )
            manifest = build_service_manifest(result, seed=5, wall_seconds=0.1)
        finally:
            obs.disable()
        from repro.obs.manifest import validate_manifest

        assert validate_manifest(manifest) == []
        summary = manifest["summary"]
        assert summary["sessions"] == 6
        assert summary["admitted"] == len(result.admitted)
        assert len(summary["per_session"]) == 6

    def test_describe_mentions_the_split(self):
        result = serve_sessions(fleet(2), CAPACITY)
        text = result.describe()
        assert "fair" in text and "admitted" in text
