"""Tests for the capacity-planning experiment (repro.experiments.capacity_plan)."""

from __future__ import annotations

import json

from repro.experiments.capacity_plan import (
    CapacityPlanConfig,
    PlanPoint,
    run_capacity_plan,
    smoke_config,
)


def _two_load_config() -> CapacityPlanConfig:
    return CapacityPlanConfig(
        points=(
            PlanPoint(sessions=48, gop_count=4, max_windows=2, loads=(1.0, 1.6)),
        ),
        base_seed=3,
    )


class TestCapacityPlan:
    def test_smoke_profile_bends_the_right_way(self):
        result = run_capacity_plan(smoke_config())
        assert result.shape_holds
        under, over = result.arms
        assert under.load < over.load
        # Overload must actually be visible in the curve, or the sweep
        # is not exercising the bottleneck at all.
        assert over.shed_rate > under.shed_rate
        assert over.admitted_fraction <= under.admitted_fraction
        assert over.clf_p95 >= under.clf_p95

    def test_summary_is_deterministic_and_json_ready(self):
        config = _two_load_config()
        first = run_capacity_plan(config).summary_dict()
        second = run_capacity_plan(config).summary_dict()
        assert first == second
        encoded = json.dumps(first)
        assert '"seed": 3' in encoded
        assert "wall" not in encoded and "seconds" not in encoded

    def test_performance_split_is_kept_out_of_the_summary(self):
        result = run_capacity_plan(_two_load_config())
        assert len(result.performance) == len(result.arms)
        for perf in result.performance:
            assert perf["wall_seconds"] > 0.0
            assert "label" in perf

    def test_render_carries_percentiles_and_verdict(self):
        result = run_capacity_plan(_two_load_config())
        text = result.render()
        assert "CLF p50/p95/p99" in text
        assert "shed rate" in text
        assert "HOLDS" in text or "VIOLATED" in text

    def test_capacity_scales_with_load(self):
        result = run_capacity_plan(_two_load_config())
        under, over = result.arms
        # Same offered traffic, scaled provisioning: capacity ratio is
        # exactly the inverse load ratio.
        assert over.capacity_bps * over.load == pytest_approx(
            under.capacity_bps * under.load
        )


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-12)
