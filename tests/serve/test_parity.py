"""Differential parity: K = 1 serving equals the sequential engine.

The service's contract is that one admitted session on a fair split of
a sufficient bottleneck is *bit-for-bit* the sequential
:func:`repro.core.protocol.run_session` — same
:class:`~repro.core.protocol.SessionResult` dataclasses, same floats —
on every available acceleration backend.  This module must keep
passing with NumPy absent, so it never imports it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import accel
from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GOP_12, GopPattern
from repro.media.stream import make_video_stream
from repro.serve import LoadSpec, SessionRequest, generate_requests, serve_sessions


@pytest.fixture(scope="module")
def figure_stream():
    return make_video_stream(GOP_12, gop_count=8)


def _served_result(
    stream, config, *, capacity=None, max_windows=4, fast=False, **kwargs
):
    request = SessionRequest(
        session_id="only", stream=stream, config=config, max_windows=max_windows
    )
    result = serve_sessions(
        [request], capacity or config.bandwidth_bps, fast=fast, **kwargs
    )
    assert len(result.admitted) == 1
    return result.outcomes[0].result


def _assert_parity(stream, config, *, capacity=None, max_windows=4, **kwargs):
    previous = accel.backend_name()
    try:
        for name in accel.available_backends():
            accel.set_backend(name)
            expected = run_session(stream, config, max_windows=max_windows)
            for fast in (False, True):
                served = _served_result(
                    stream,
                    config,
                    capacity=capacity,
                    max_windows=max_windows,
                    fast=fast,
                    **kwargs,
                )
                assert served == expected, (
                    f"backend {name!r} diverged (fast={fast})"
                )
    finally:
        accel.set_backend(previous)


class TestSingleSessionParity:
    def test_paper_geometry(self, figure_stream):
        """The Figure-8 window shape (N = 24), capacity == provisioning."""
        _assert_parity(figure_stream, ProtocolConfig(seed=2000))

    def test_capacity_above_native_is_idle_headroom(self, figure_stream):
        """A share above the provisioned rate never speeds a session up."""
        config = ProtocolConfig(seed=7)
        _assert_parity(
            figure_stream, config, capacity=config.bandwidth_bps * 4
        )

    def test_unscrambled_baseline_arm(self, figure_stream):
        _assert_parity(
            figure_stream,
            ProtocolConfig(layered=False, scramble=False, seed=2000),
        )

    def test_priority_scheduler_single_session(self, figure_stream):
        from repro.serve import make_scheduler

        _assert_parity(
            figure_stream,
            ProtocolConfig(seed=11),
            scheduler=make_scheduler("priority"),
        )

    def test_shedding_disabled_arm(self, figure_stream):
        _assert_parity(
            figure_stream, ProtocolConfig(seed=23), shedding=False
        )

    @pytest.mark.parametrize("seed", [0, 1, 99, 4242])
    def test_seed_sweep(self, figure_stream, seed):
        _assert_parity(
            figure_stream, ProtocolConfig(seed=seed), max_windows=3
        )

    def test_small_gop_shapes(self):
        """IBBP windows: the stream's critical demand (1.26 Mbps)
        exceeds its own 1.2 Mbps provisioning, so this also pins parity
        with admission control out of the way."""
        stream = make_video_stream(GopPattern.parse("IBBP"), gop_count=6)
        for lossy in (False, True):
            config = ProtocolConfig(
                gop_size=4, seed=5, lossy_feedback=lossy, p_bad=0.5
            )
            _assert_parity(stream, config, max_windows=5, admission=False)

    def test_loadgen_single_session_matches_batch_reference(self):
        """The K = 1 generated fleet equals the unloaded reference the
        capacity sweep computes through the batched engine."""
        from repro.core.batch import run_sessions_batch

        spec = LoadSpec(sessions=1, seed=9, gop_count=4, max_windows=4)
        (request,) = generate_requests(spec)
        service = serve_sessions([request], request.config.bandwidth_bps)
        reference_stream = make_video_stream(GOP_12, gop_count=4)
        (expected,) = run_sessions_batch(
            reference_stream,
            replace(spec.config, seed=request.config.seed),
            seeds=[request.config.seed],
            max_windows=4,
        )
        assert service.outcomes[0].result == expected
