"""Differential battery for the window-batched serving fast path.

The fast path's contract is unconditional: for *any* fleet —
contended, staggered arrivals, mid-window departures, rejections,
priority splits, shedding on or off — ``serve_sessions(..., fast=True)``
returns bit-for-bit the :class:`~repro.serve.service.ServiceResult` of
the event-loop :class:`~repro.serve.service.StreamingService`, on every
available acceleration backend.  This module must keep passing with
NumPy absent, so it never imports it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import accel, obs
from repro.core.protocol import ProtocolConfig
from repro.errors import ConfigurationError
from repro.media.gop import GOP_12, GopPattern
from repro.media.stream import make_video_stream
from repro.network.simulator import EventLoop
from repro.serve import (
    FastStreamingService,
    LoadSpec,
    SessionRequest,
    generate_requests,
    make_scheduler,
    run_sharded,
    serve_sessions,
    shard_specs,
)
from repro.serve.fastpath import SHARD_SEED_STRIDE, serve_sessions_fast


def _outcome_key(outcome):
    return (
        outcome.request.session_id,
        outcome.admitted,
        outcome.reason,
        outcome.share_bps,
        outcome.min_share_bps,
        outcome.shed_frames,
        outcome.demand_bps,
        outcome.critical_bps,
        outcome.result,
    )


def _assert_fleet_parity(requests_fn, capacity_bps, **kwargs):
    previous = accel.backend_name()
    try:
        for name in accel.available_backends():
            accel.set_backend(name)
            slow = serve_sessions(requests_fn(), capacity_bps, **kwargs)
            fast = serve_sessions(
                requests_fn(), capacity_bps, fast=True, **kwargs
            )
            assert len(slow.outcomes) == len(fast.outcomes)
            for a, b in zip(slow.outcomes, fast.outcomes):
                assert _outcome_key(a) == _outcome_key(b), (
                    f"backend {name!r}: session "
                    f"{a.request.session_id!r} diverged"
                )
    finally:
        accel.set_backend(previous)


class TestFleetParity:
    def test_contended_generated_fleet(self):
        """Staggered arrivals, a rejection, shedding under contention."""
        _assert_fleet_parity(
            lambda: generate_requests(LoadSpec(sessions=4, seed=7)),
            2_400_000.0,
        )

    def test_priority_scheduler_fleet(self):
        _assert_fleet_parity(
            lambda: generate_requests(LoadSpec(sessions=4, seed=3)),
            2_000_000.0,
            scheduler=make_scheduler("priority"),
        )

    def test_unmanaged_overload(self):
        """No admission, no shedding: overload lands on the window budget."""
        _assert_fleet_parity(
            lambda: generate_requests(LoadSpec(sessions=4, seed=5)),
            1_200_000.0,
            shedding=False,
            admission=False,
        )

    def test_simultaneous_arrivals(self):
        _assert_fleet_parity(
            lambda: generate_requests(
                LoadSpec(sessions=3, seed=2, mean_interarrival=0.0)
            ),
            2_000_000.0,
        )

    def test_heterogeneous_window_shapes(self):
        """Different GOP patterns never share a batch group but must
        still agree with the event loop."""

        def requests():
            long_stream = make_video_stream(GOP_12, gop_count=4, name="long")
            short_stream = make_video_stream(
                GopPattern.parse("IBBP"), gop_count=8, name="short"
            )
            return [
                SessionRequest(
                    session_id="long",
                    stream=long_stream,
                    config=ProtocolConfig(seed=31),
                    max_windows=3,
                ),
                SessionRequest(
                    session_id="short",
                    stream=short_stream,
                    config=ProtocolConfig(gop_size=4, seed=77),
                    arrival_time=0.2,
                    max_windows=5,
                ),
            ]

        _assert_fleet_parity(requests, 2_400_000.0, admission=False)


class TestRebalanceEdgeCases:
    """Scheduler-rebalance edges: the fast path must replay them exactly."""

    def test_departure_mid_window(self):
        """A short session departs strictly inside a long session's
        window; the survivor's share grows at its next boundary only."""

        def requests():
            stream = make_video_stream(GOP_12, gop_count=4)
            return [
                SessionRequest(
                    session_id="long",
                    stream=stream,
                    config=ProtocolConfig(seed=13),
                    max_windows=4,
                ),
                SessionRequest(
                    session_id="short",
                    stream=stream,
                    config=ProtocolConfig(seed=29),
                    # Cycle is 1.0 s: windows at 0.4, 1.4 -> departs at
                    # 2.4, mid-way through the long session's window 2.
                    arrival_time=0.4,
                    max_windows=2,
                ),
            ]

        _assert_fleet_parity(requests, 1_800_000.0, admission=False)

    def test_admission_at_exact_window_boundary(self):
        """A newcomer arriving exactly on another session's window
        boundary: event order at the tied timestamp decides whether the
        boundary window sees the rebalanced share."""

        def requests():
            stream = make_video_stream(GOP_12, gop_count=4)
            return [
                SessionRequest(
                    session_id="first",
                    stream=stream,
                    config=ProtocolConfig(seed=41),
                    max_windows=4,
                ),
                SessionRequest(
                    session_id="boundary",
                    stream=stream,
                    config=ProtocolConfig(seed=43),
                    arrival_time=1.0,  # exactly the first window boundary
                    max_windows=3,
                ),
            ]

        _assert_fleet_parity(requests, 1_800_000.0, admission=False)

    def test_share_floor_starvation(self):
        """A starved session pinned at the minimum share floor."""

        def requests():
            stream = make_video_stream(GOP_12, gop_count=4)
            return [
                SessionRequest(
                    session_id="heavy",
                    stream=stream,
                    config=ProtocolConfig(seed=3),
                    weight=1.0,
                    priority=1,
                    max_windows=3,
                ),
                SessionRequest(
                    session_id="starved",
                    stream=stream,
                    config=ProtocolConfig(seed=4),
                    weight=1.0,
                    priority=0,
                    max_windows=3,
                ),
            ]

        _assert_fleet_parity(
            requests,
            1_000_000.0,
            scheduler=make_scheduler("priority"),
            admission=False,
        )


class TestFastServiceFrontend:
    def test_submit_run_matches_one_shot(self):
        requests = generate_requests(LoadSpec(sessions=2, seed=1))
        service = FastStreamingService(2_400_000.0)
        service.submit_all(requests)
        result = service.run()
        expected = serve_sessions(
            generate_requests(LoadSpec(sessions=2, seed=1)), 2_400_000.0
        )
        assert [_outcome_key(o) for o in result.outcomes] == [
            _outcome_key(o) for o in expected.outcomes
        ]

    def test_submit_after_run_rejected(self):
        service = FastStreamingService(1_000_000.0)
        service.run()
        with pytest.raises(ConfigurationError):
            service.submit(generate_requests(LoadSpec(sessions=1, seed=0))[0])

    def test_custom_loop_falls_back_to_event_loop(self):
        """A caller-owned loop may carry foreign events: the fast path
        must hand the run to the event-loop service wholesale."""
        requests = generate_requests(LoadSpec(sessions=2, seed=6))
        result = serve_sessions_fast(
            requests, 2_400_000.0, loop=EventLoop()
        )
        expected = serve_sessions(
            generate_requests(LoadSpec(sessions=2, seed=6)), 2_400_000.0
        )
        assert [_outcome_key(o) for o in result.outcomes] == [
            _outcome_key(o) for o in expected.outcomes
        ]


class TestSharding:
    def test_shard_specs_partition_and_seed_lineage(self):
        spec = LoadSpec(sessions=7, seed=11)
        shards = shard_specs(spec, 3)
        assert [s.sessions for s in shards] == [3, 2, 2]
        assert [s.seed for s in shards] == [
            11,
            11 + SHARD_SEED_STRIDE,
            11 + 2 * SHARD_SEED_STRIDE,
        ]
        # Non-partitioned fields are inherited untouched.
        assert all(s.gop_count == spec.gop_count for s in shards)

    def test_more_shards_than_sessions_drops_empty_tail(self):
        assert [s.sessions for s in shard_specs(LoadSpec(sessions=2), 5)] == [1, 1]

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_specs(LoadSpec(sessions=2), 0)

    def test_sharded_run_independent_of_worker_count(self):
        spec = LoadSpec(sessions=4, seed=9, gop_count=4)
        serial = run_sharded(spec, 2_000_000.0, shards=2, jobs=1)
        parallel = run_sharded(spec, 2_000_000.0, shards=2, jobs=2)
        assert serial.shard_seeds == parallel.shard_seeds
        assert [s.summary_dict() for s in serial.shards] == [
            s.summary_dict() for s in parallel.shards
        ]
        assert [_outcome_key(o) for o in serial.outcomes] == [
            _outcome_key(o) for o in parallel.outcomes
        ]

    def test_each_shard_matches_direct_fleet(self):
        """Shard i's fleet equals serving its derived spec directly."""
        spec = LoadSpec(sessions=4, seed=21, gop_count=4)
        sharded = run_sharded(spec, 2_400_000.0, shards=2, jobs=1)
        for shard_spec, shard_result in zip(
            shard_specs(spec, 2), sharded.shards
        ):
            direct = serve_sessions(
                generate_requests(shard_spec), 2_400_000.0, fast=True
            )
            assert [_outcome_key(o) for o in shard_result.outcomes] == [
                _outcome_key(o) for o in direct.outcomes
            ]

    def test_sharded_event_loop_engine(self):
        """``fast=False`` shards run the event-loop service instead —
        results are identical either way."""
        spec = LoadSpec(sessions=3, seed=2, gop_count=4)
        fast = run_sharded(spec, 2_000_000.0, shards=2, jobs=1, fast=True)
        slow = run_sharded(spec, 2_000_000.0, shards=2, jobs=1, fast=False)
        assert [_outcome_key(o) for o in fast.outcomes] == [
            _outcome_key(o) for o in slow.outcomes
        ]

    def test_shm_transport_matches_pickle(self):
        """The shared-memory result transport is invisible in summaries.

        The shm transport ships session outcomes as numeric columns (a
        :class:`repro.core.kernel.FleetState`), so per-window detail
        stays in the worker — but every summary statistic must round
        trip exactly (float64 columns copy losslessly).
        """

        def lean_key(outcome):
            return (
                outcome.request.session_id,
                outcome.request.priority,
                outcome.admitted,
                outcome.reason,
                outcome.share_bps,
                outcome.min_share_bps,
                outcome.shed_frames,
                outcome.demand_bps,
                outcome.critical_bps,
                outcome.result.mean_clf if outcome.result else None,
                outcome.result.stream_clf if outcome.result else None,
            )

        spec = LoadSpec(sessions=4, seed=13, gop_count=4)
        pickled = run_sharded(
            spec, 2_400_000.0, shards=2, jobs=2, transport="pickle"
        )
        shared = run_sharded(
            spec, 2_400_000.0, shards=2, jobs=2, transport="shm"
        )
        assert pickled.summary_dict() == shared.summary_dict()
        assert [lean_key(o) for o in pickled.outcomes] == [
            lean_key(o) for o in shared.outcomes
        ]

    def test_shm_transport_serial_jobs(self):
        spec = LoadSpec(sessions=3, seed=5, gop_count=4)
        pickled = run_sharded(spec, 2_000_000.0, shards=2, jobs=1)
        shared = run_sharded(
            spec, 2_000_000.0, shards=2, jobs=1, transport="shm"
        )
        assert pickled.summary_dict() == shared.summary_dict()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                LoadSpec(sessions=2, seed=1, gop_count=4),
                2_000_000.0,
                shards=2,
                transport="carrier-pigeon",
            )

    def test_sharded_summary_and_manifest(self):
        from repro.serve import build_service_manifest

        result = run_sharded(
            LoadSpec(sessions=3, seed=2, gop_count=4), 2_000_000.0,
            shards=2, jobs=1,
        )
        summary = result.summary_dict()
        assert summary["shards"] == 2
        assert summary["sessions"] == 3
        assert len(summary["per_shard"]) == 2
        manifest = build_service_manifest(result, seed=2)
        assert manifest["summary"]["shards"] == 2
        assert "shards" in result.describe()


class TestObservability:
    def test_fastpath_counters(self):
        registry = obs.enable()
        obs.reset()
        try:
            serve_sessions(
                generate_requests(
                    LoadSpec(sessions=3, seed=2, mean_interarrival=0.0)
                ),
                6_000_000.0,
                fast=True,
            )
            snapshot = registry.snapshot()
            counters = snapshot["counters"]
            assert counters["serve.fastpath.runs"] == 1
            assert counters["serve.fastpath.sessions"] == 3
            # Identical streams admitted together at an uncontended
            # capacity share one batch group every window.
            assert counters["serve.fastpath.windows_batched"] > 0
            assert counters["serve.sessions_completed"] == 3
            assert counters["serve.windows"] == counters["protocol.windows"]
        finally:
            obs.disable()

    def test_demand_cache_counters(self):
        from repro.serve.admission import _demand_cache, _demand_id_cache

        registry = obs.enable()
        obs.reset()
        try:
            _demand_cache.clear()
            _demand_id_cache.clear()
            requests = generate_requests(LoadSpec(sessions=2, seed=77))
            stream = requests[0].stream
            config = requests[0].config
            from repro.serve import estimate_demand

            first = estimate_demand(stream, config, max_windows=4)
            again = estimate_demand(stream, config, max_windows=4)
            assert first == again
            counters = registry.snapshot()["counters"]
            assert counters["serve.demand_cache.misses"] >= 1
            assert counters["serve.demand_cache.hits"] >= 1
        finally:
            obs.disable()

    def test_demand_cache_is_correct_across_windowings(self):
        """Different windowings of one stream are distinct cache keys."""
        from repro.serve import estimate_demand
        from repro.serve.admission import _demand_cache

        _demand_cache.clear()
        stream = make_video_stream(GOP_12, gop_count=4)
        config = ProtocolConfig()
        whole = estimate_demand(stream, config)
        limited = estimate_demand(stream, config, max_windows=1)
        assert estimate_demand(stream, config) == whole
        assert estimate_demand(stream, config, max_windows=1) == limited
        small = estimate_demand(stream, replace(config, gop_size=6))
        assert estimate_demand(stream, replace(config, gop_size=6)) == small
