"""Tests for the capacity sweep experiment (repro.experiments.capacity)."""

from __future__ import annotations

import pytest

from repro.experiments.capacity import CapacityConfig, run_capacity

SMALL = CapacityConfig(
    ks=(1, 4), replications=1, gop_count=2, max_windows=2
)


@pytest.fixture(scope="module")
def small_result():
    return run_capacity(SMALL)


class TestSmallSweep:
    def test_points_cover_the_grid(self, small_result):
        assert {(p.k, p.arm) for p in small_result.points} == {
            (1, "shed"),
            (1, "baseline"),
            (4, "shed"),
            (4, "baseline"),
        }

    def test_unloaded_arms_agree_with_reference(self, small_result):
        """K = 1 under either arm is the batched single-session run."""
        reference = small_result.reference.mean_clf.mean
        assert small_result.point(1, "shed").mean_clf == pytest.approx(reference)
        assert small_result.point(1, "baseline").mean_clf == pytest.approx(
            reference
        )

    def test_baseline_admits_everyone(self, small_result):
        for k in SMALL.ks:
            point = small_result.point(k, "baseline")
            assert point.admitted == point.submitted
            assert point.shed_frames == 0

    def test_render_and_summary(self, small_result):
        text = small_result.render()
        assert "Capacity sweep" in text and "unloaded reference" in text
        summary = small_result.summary_dict()
        assert summary["replications"] == 1
        assert len(summary["points"]) == 4
        assert {p["arm"] for p in summary["points"]} == {"shed", "baseline"}

    def test_replications_override(self):
        result = run_capacity(SMALL, replications=2)
        assert result.config.replications == 2
        assert result.reference.replications == 2

    def test_runner_registration(self):
        from repro.experiments.runner import available_experiments

        assert "capacity" in available_experiments()


@pytest.mark.slow
class TestFullSweep:
    def test_graceful_degradation_shape(self):
        """The committed manifest's claim: shedding holds the adaptive
        target while the unmanaged baseline's worst case grows with K."""
        result = run_capacity()
        config = result.config
        k_hi = max(config.ks)
        assert result.shape_holds
        assert (
            result.point(k_hi, "shed").mean_clf <= config.target_clf
        )
        assert (
            result.point(k_hi, "baseline").worst_clf
            > result.point(min(config.ks), "baseline").worst_clf
        )
        # shedding happened, and only on the managed arm
        assert result.point(k_hi, "shed").shed_frames > 0
        assert result.point(k_hi, "baseline").shed_frames == 0
