"""Shared-memory lifecycle under abnormal exits.

The fan-outs ship results through named ``/dev/shm`` segments, which
the kernel does not reclaim when a process dies — teardown is the
code's job.  These tests pin the three halves of that contract: a
worker killed mid-run leaves a segment that :func:`reap_segments`
recognizes (by its dead baked-in owner) and unlinks; a worker that
*fails* ships an error marker and the coordinator unlinks every
sibling segment before re-raising; and a fan-out whose pool dies under
it sweeps its own pid's segments on the way out.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro.core import kernel
from repro.serve import LoadSpec, run_sharded
from repro.serve.fastpath import ShardedService


def _park_segment_and_hang(conn) -> None:
    """Child: park a fleet segment it owns, report the name, then hang."""
    state = kernel.FleetState({"pos": [1.0, 2.0, 3.0]})
    handle = state.to_shared(owner_pid=os.getpid())
    conn.send(handle.shm_name)
    conn.close()
    signal.pause()


class TestReaping:
    def test_killed_worker_segment_is_reaped(self):
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        worker = ctx.Process(target=_park_segment_and_hang, args=(child_conn,))
        worker.start()
        try:
            name = parent_conn.recv()
            assert name in kernel.audit_segments()
            # Kill the worker mid-run: no teardown code gets to run.
            os.kill(worker.pid, signal.SIGKILL)
            worker.join()
        finally:
            if worker.is_alive():  # pragma: no cover - kill failed
                worker.terminate()
                worker.join()
        assert name in kernel.audit_segments(), "the leak must be visible"
        reaped = kernel.reap_segments()
        assert name in reaped
        assert name not in kernel.audit_segments()

    def test_live_owners_are_never_reaped(self):
        segment = kernel.new_segment(64)
        name = segment.name
        segment.close()
        try:
            assert name not in kernel.reap_segments()
            assert name in kernel.audit_segments()
        finally:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=name)
            shm.close()
            shm.unlink()

    def test_foreign_shm_files_are_ignored(self):
        from multiprocessing import shared_memory

        foreign = shared_memory.SharedMemory(create=True, size=64)
        try:
            assert foreign.name.lstrip("/") not in kernel.audit_segments()
            assert foreign.name.lstrip("/") not in kernel.reap_segments()
        finally:
            foreign.close()
            foreign.unlink()


class TestCoordinatorTeardown:
    def test_failed_shard_unlinks_every_sibling_segment(self, monkeypatch):
        import repro.serve.service as service

        real = service.serve_sessions
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("shard blew up")
            return real(*args, **kwargs)

        monkeypatch.setattr(service, "serve_sessions", flaky)
        before = set(kernel.audit_segments())
        spec = LoadSpec(sessions=8, seed=0, gop_count=4, max_windows=2)
        with pytest.raises(RuntimeError, match="shard blew up"):
            # jobs=1 keeps the fan-out in-process, so the monkeypatch
            # reaches the workers and shard 0's segment really exists
            # by the time shard 1 fails.
            run_sharded(spec, 2e6, shards=4, jobs=1, transport="shm")
        assert set(kernel.audit_segments()) == before

    def test_pool_death_sweeps_own_segments(self, monkeypatch):
        import repro.serve.fastpath as fastpath

        orphan = kernel.new_segment(64)
        orphan_name = orphan.name
        orphan.close()

        def dying_pool(fn, tasks, jobs):
            raise KeyboardInterrupt

        monkeypatch.setattr(fastpath, "parallel_map", dying_pool)
        spec = LoadSpec(sessions=4, seed=0, gop_count=4, max_windows=2)
        with pytest.raises(KeyboardInterrupt):
            ShardedService(2e6, shards=2).run(spec)
        # The sweep unlinks every segment carrying the coordinator's own
        # pid — including the one "a worker parked" before the pool died.
        assert orphan_name not in kernel.audit_segments()
