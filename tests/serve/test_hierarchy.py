"""Tests for the hierarchical fan-out (repro.serve.hierarchy).

The load-bearing property is bit-for-bit parity: a hierarchy run at
shard count ``S`` must reproduce ``run_sharded(shards=S)`` — and, via
that suite's own pins, ``serve_sessions(fast=True)`` and the event-loop
service — outcome for outcome, on every acceleration backend, for any
worker count.  Everything else (cost-model planning, the shared-memory
result arena, the reduced result surface) is tested around that core.
"""

from __future__ import annotations

import os

import pytest

from repro import accel
from repro.core import kernel
from repro.errors import ConfigurationError
from repro.serve import LoadSpec, run_sharded
from repro.serve.admission import ADMITTED_REASON
from repro.serve.fastpath import resolve_auto_shards, shard_specs
from repro.serve.hierarchy import (
    MAX_SHARD_SESSIONS,
    HierarchyPlan,
    ResultArena,
    plan_hierarchy,
    run_hierarchy,
)

#: A fleet under enough pressure that admission rejects, shedding fires
#: and shares bind — the regime where a transport bug would show.
TIGHT = dict(sessions=48, seed=3, mean_interarrival=1e-3, gop_count=4, max_windows=2)
TIGHT_CAPACITY = 4_000_000.0


def _tight_spec() -> LoadSpec:
    return LoadSpec(**TIGHT)


def _flat_keys(sharded):
    keys = []
    for shard in sharded.shards:
        for outcome in shard.outcomes:
            result = outcome.result
            keys.append(
                (
                    outcome.request.session_id,
                    outcome.request.priority,
                    outcome.admitted,
                    outcome.reason,
                    outcome.shed_frames,
                    outcome.share_bps,
                    outcome.min_share_bps,
                    outcome.demand_bps,
                    outcome.critical_bps,
                    result.mean_clf if result else None,
                    result.stream_clf if result else None,
                )
            )
    return keys


def _hierarchy_keys(result):
    keys = []
    for outcome in result.outcomes:
        lean = outcome.result
        keys.append(
            (
                outcome.request.session_id,
                outcome.request.priority,
                outcome.admitted,
                outcome.reason,
                outcome.shed_frames,
                outcome.share_bps,
                outcome.min_share_bps,
                outcome.demand_bps,
                outcome.critical_bps,
                lean.mean_clf if lean else None,
                lean.stream_clf if lean else None,
            )
        )
    return keys


class TestPlanning:
    def test_cost_model_sizes_the_tree(self):
        spec = LoadSpec(sessions=1000, gop_count=4, max_windows=2)
        plan = plan_hierarchy(spec, 1e6, target_shard_cost=128)
        # 1000 sessions x 2 windows / 128 session-windows -> 16 shards.
        assert plan.shards == 16
        assert plan.windows_per_session == 2
        assert sum(task.spec.sessions for task in plan.shard_tasks) == 1000
        offsets = [task.row_offset for task in plan.shard_tasks]
        sizes = [task.spec.sessions for task in plan.shard_tasks]
        assert offsets == [sum(sizes[:i]) for i in range(len(sizes))]

    def test_session_cap_binds_when_cost_budget_is_huge(self):
        spec = LoadSpec(sessions=4096, gop_count=4, max_windows=1)
        plan = plan_hierarchy(spec, 1e6, target_shard_cost=10**9)
        assert plan.shards == 4096 // MAX_SHARD_SESSIONS
        assert all(
            task.spec.sessions <= MAX_SHARD_SESSIONS for task in plan.shard_tasks
        )

    def test_explicit_shards_preserve_flat_seed_lineage(self):
        spec = _tight_spec()
        plan = plan_hierarchy(spec, TIGHT_CAPACITY, shards=6)
        assert plan.shards == 6
        assert plan.shard_seeds == [s.seed for s in shard_specs(spec, 6)]

    def test_worker_count_clamped_to_shards(self):
        spec = LoadSpec(sessions=8, gop_count=4, max_windows=2)
        plan = plan_hierarchy(spec, 1e6, shards=2, workers=64)
        assert plan.workers == 2

    def test_invalid_inputs_rejected(self):
        spec = LoadSpec(sessions=8)
        with pytest.raises(ConfigurationError):
            plan_hierarchy(spec, 0.0)
        with pytest.raises(ConfigurationError):
            plan_hierarchy(spec, 1e6, target_shard_cost=0)
        with pytest.raises(ConfigurationError):
            plan_hierarchy(spec, 1e6, shards=0)
        with pytest.raises(ConfigurationError):
            plan_hierarchy(spec, 1e6, workers=0)
        with pytest.raises(ConfigurationError):
            plan_hierarchy(spec, 1e6, scheduler="bogus")

    def test_plan_to_dict_is_json_ready(self):
        import json

        plan = plan_hierarchy(LoadSpec(sessions=16), 1e6, shards=4)
        record = plan.to_dict()
        json.dumps(record)
        assert record["shards"] == 4
        assert len(record["shard_seeds"]) == 4


class TestParity:
    def test_matches_flat_fanout_on_every_backend(self):
        previous = accel.backend_name()
        try:
            for name in accel.available_backends():
                accel.set_backend(name)
                flat = run_sharded(
                    _tight_spec(), TIGHT_CAPACITY, shards=6, jobs=1
                )
                hier = run_hierarchy(
                    _tight_spec(), TIGHT_CAPACITY, shards=6, jobs=1
                )
                assert hier.rejected_count > 0, "scenario must exercise admission"
                assert _hierarchy_keys(hier) == _flat_keys(flat), (
                    f"backend {name!r} diverged"
                )
                assert hier.admitted_count == sum(
                    len(s.admitted) for s in flat.shards
                )
                assert hier.shed_total == sum(s.shed_total for s in flat.shards)
        finally:
            accel.set_backend(previous)

    def test_single_shard_matches_fast_service(self):
        from repro.serve import generate_requests, serve_sessions

        spec = LoadSpec(
            sessions=12, seed=1, mean_interarrival=1e-3, gop_count=4, max_windows=2
        )
        direct = serve_sessions(generate_requests(spec), TIGHT_CAPACITY, fast=True)
        hier = run_hierarchy(spec, TIGHT_CAPACITY, shards=1, jobs=1)
        direct_keys = [
            (
                o.request.session_id,
                o.admitted,
                o.reason,
                o.shed_frames,
                o.share_bps,
                o.min_share_bps,
                o.result.mean_clf if o.result else None,
                o.result.stream_clf if o.result else None,
            )
            for o in direct.outcomes
        ]
        hier_keys = [
            (
                o.request.session_id,
                o.admitted,
                o.reason,
                o.shed_frames,
                o.share_bps,
                o.min_share_bps,
                o.result.mean_clf if o.result else None,
                o.result.stream_clf if o.result else None,
            )
            for o in hier.outcomes
        ]
        assert hier_keys == direct_keys

    def test_independent_of_worker_count_and_pool_size(self):
        spec = _tight_spec()
        lone = run_hierarchy(spec, TIGHT_CAPACITY, shards=6, workers=1, jobs=1)
        pooled = run_hierarchy(spec, TIGHT_CAPACITY, shards=6, workers=3, jobs=3)
        assert lone.columns == pooled.columns
        assert lone.window_totals == pooled.window_totals
        assert lone.rejected_reasons == pooled.rejected_reasons
        assert lone.summary_dict() == pooled.summary_dict()

    def test_rejection_reasons_survive_the_lean_transport(self):
        result = run_hierarchy(_tight_spec(), TIGHT_CAPACITY, shards=6, jobs=1)
        rejected = result.rejected
        assert rejected
        assert all("critical demand" in o.reason for o in rejected)
        assert all(o.reason == ADMITTED_REASON for o in result.admitted)


class TestArena:
    def test_no_segments_leak_after_a_run(self):
        before = set(kernel.audit_segments())
        run_hierarchy(_tight_spec(), TIGHT_CAPACITY, shards=4, jobs=2)
        assert set(kernel.audit_segments()) == before

    def test_arena_layout_and_unlink(self):
        plan = plan_hierarchy(
            LoadSpec(sessions=10, gop_count=4, max_windows=2), 1e6, shards=3
        )
        arena = ResultArena.create(plan)
        try:
            assert f"-{os.getpid()}-" in arena.shm_name
            with arena.map() as view:
                assert view.sessions.rows == 10
                assert view.windows.rows == 3 * plan.windows_per_session
                assert view.shards.rows == 3
                column = view.sessions.column("admitted")
                assert list(column) == [0.0] * 10
                column[0] = 1.0
            with arena.map() as view:
                assert view.sessions.column("admitted")[0] == 1.0
        finally:
            arena.unlink()
        arena.unlink()  # second unlink must be a no-op

    def test_worker_error_propagates_and_cleans_up(self, monkeypatch):
        from repro.serve import hierarchy

        def boom(*args, **kwargs):
            raise RuntimeError("planned failure")

        monkeypatch.setattr(hierarchy, "_plan_shard", boom)
        before = set(kernel.audit_segments())
        with pytest.raises(RuntimeError, match="planned failure"):
            run_hierarchy(_tight_spec(), TIGHT_CAPACITY, shards=4, jobs=1)
        assert set(kernel.audit_segments()) == before


class TestResultSurface:
    def _result(self):
        return run_hierarchy(_tight_spec(), TIGHT_CAPACITY, shards=6, jobs=1)

    def test_percentiles_are_nearest_rank(self):
        from repro.serve.hierarchy import _percentile

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert _percentile(values, 50.0) == 3.0
        assert _percentile(values, 95.0) == 5.0
        assert _percentile(values, 1.0) == 1.0
        assert _percentile([], 50.0) == 0.0

    def test_summary_is_deterministic_and_wall_free(self):
        result = self._result()
        summary = result.summary_dict()
        flat = str(summary)
        assert "wall" not in flat and "seconds" not in flat
        assert summary == self._result().summary_dict()
        perf = result.performance_dict()
        assert perf["wall_seconds"] > 0.0
        assert perf["sessions_per_second"] > 0.0
        for key in ("worker_plan_seconds", "worker_serve_seconds",
                    "worker_reduce_seconds", "coordinator_seconds"):
            assert perf[key] >= 0.0

    def test_per_window_curve_accounts_every_admitted_session(self):
        result = self._result()
        curve = result.per_window_curve()
        assert [point["window"] for point in curve] == [0, 1]
        assert all(point["sessions"] == result.admitted_count for point in curve)
        assert sum(point["shed_frames"] for point in curve) == result.shed_total

    def test_describe_mentions_the_tree_and_the_tiles(self):
        text = self._result().describe()
        assert "shards" in text and "workers" in text
        assert "p50/p95/p99" in text and "sessions/s" in text

    def test_accepts_prebuilt_plan_and_requires_capacity_otherwise(self):
        plan = plan_hierarchy(_tight_spec(), TIGHT_CAPACITY, shards=2)
        assert isinstance(plan, HierarchyPlan)
        result = run_hierarchy(plan, jobs=1)
        assert result.sessions == TIGHT["sessions"]
        with pytest.raises(ConfigurationError):
            run_hierarchy(_tight_spec())


class TestAutoShards:
    def test_uses_process_cpu_count_when_available(self, monkeypatch):
        from repro.serve import fastpath

        monkeypatch.setattr(
            fastpath.os, "process_cpu_count", lambda: 6, raising=False
        )
        assert resolve_auto_shards(100) == 6
        assert resolve_auto_shards(4) == 4  # capped by the fleet

    def test_falls_back_to_cpu_count(self, monkeypatch):
        from repro.serve import fastpath

        monkeypatch.delattr(fastpath.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(fastpath.os, "cpu_count", lambda: 3)
        assert resolve_auto_shards(100) == 3

    def test_never_below_one(self, monkeypatch):
        from repro.serve import fastpath

        monkeypatch.delattr(fastpath.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(fastpath.os, "cpu_count", lambda: None)
        assert resolve_auto_shards(100) == 1

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            resolve_auto_shards(0)
