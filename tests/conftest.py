"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.traces.synthetic import calibrated_stream


@pytest.fixture(scope="session", autouse=True)
def _isolated_perm_cache(tmp_path_factory):
    """Point the persistent permutation cache at a per-run temp dir.

    Keeps the suite hermetic: no reads of (possibly stale) entries from
    the user's home cache, no writes outside the pytest tmp tree.
    """
    cache_dir = tmp_path_factory.mktemp("perm-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def small_mpeg_stream():
    """Six GOPs of GOP-12 video with constant per-type sizes."""
    return make_video_stream(GOP_12, gop_count=6)


@pytest.fixture(scope="session")
def jurassic_stream():
    """A calibrated Jurassic Park-like stream, 30 GOPs."""
    return calibrated_stream("jurassic_park_corrected", gop_count=30, seed=7)
