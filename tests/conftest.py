"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.media.gop import GOP_12, GopPattern
from repro.media.stream import make_video_stream
from repro.traces.synthetic import calibrated_stream


@pytest.fixture(scope="session")
def small_mpeg_stream():
    """Six GOPs of GOP-12 video with constant per-type sizes."""
    return make_video_stream(GOP_12, gop_count=6)


@pytest.fixture(scope="session")
def jurassic_stream():
    """A calibrated Jurassic Park-like stream, 30 GOPs."""
    return calibrated_stream("jurassic_park_corrected", gop_count=30, seed=7)
