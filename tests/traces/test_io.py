"""Tests for trace file I/O (repro.traces.io)."""

from __future__ import annotations

import io

import pytest

from repro.errors import TraceError
from repro.traces.io import read_trace, round_trip_equal, write_trace
from repro.traces.synthetic import SyntheticTraceConfig, synthetic_stream


class TestRoundTrip:
    def test_memory_roundtrip(self):
        stream = synthetic_stream(SyntheticTraceConfig(gop_count=5, seed=2))
        buffer = io.StringIO()
        write_trace(stream, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        assert round_trip_equal(stream, restored)
        assert restored.pattern is not None
        assert str(restored.pattern) == str(stream.pattern)

    def test_file_roundtrip(self, tmp_path):
        stream = synthetic_stream(SyntheticTraceConfig(gop_count=3, seed=2))
        path = tmp_path / "trace.txt"
        write_trace(stream, path)
        restored = read_trace(path)
        assert round_trip_equal(stream, restored)
        assert restored.fps == stream.fps


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\nI 100\nB 50\nB 40\nP 70\n"
        stream = read_trace(io.StringIO("# fps=24 gop=IBBP\n" + text))
        assert len(stream) == 4

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("# only a comment\n"))

    def test_three_column_university_format(self):
        text = "1 I 100\n2 B 50\n3 B 40\n4 P 70\n"
        stream = read_trace(io.StringIO(text))
        assert len(stream) == 4
        assert stream[0].size_bits == 100
        assert stream[3].frame_type.value == "P"

    def test_malformed_line(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("I 100 extra junk\n"))

    def test_bad_type(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("Q 100\n"))

    def test_bad_size(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("I lots\n"))

    def test_negative_size(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("I -4\n"))

    def test_bad_fps_header(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("# fps=abc\nI 100\n"))

    def test_header_name(self):
        stream = read_trace(io.StringIO("# fps=30 gop= name=demo\nX 10\n"))
        assert stream.name == "demo"
        assert stream.fps == 30.0
        assert stream.pattern is None


class TestComparison:
    def test_round_trip_equal_detects_difference(self):
        a = synthetic_stream(SyntheticTraceConfig(gop_count=2, seed=1))
        b = synthetic_stream(SyntheticTraceConfig(gop_count=2, seed=2))
        assert not round_trip_equal(a, b)
