"""Tests for the trace catalog (repro.traces.catalog)."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.traces.catalog import (
    JURASSIC_PARK,
    STAR_WARS,
    TraceSpec,
    buffer_bytes,
    largest_gop_bits,
    spec_for,
)


class TestCatalog:
    def test_paper_numbers(self):
        assert spec_for("jurassic_park").max_gop_bits == 62776
        assert spec_for("silence_of_the_lambs").max_gop_bits == 462056
        assert spec_for("star_wars").max_gop_bits == 932710
        assert spec_for("terminator").max_gop_bits == 407512
        assert spec_for("beauty_and_the_beast").max_gop_bits == 769376

    def test_largest_is_star_wars(self):
        assert largest_gop_bits() == STAR_WARS.max_gop_bits

    def test_unknown_movie(self):
        with pytest.raises(TraceError):
            spec_for("plan_9_from_outer_space")

    def test_corrected_variant_present(self):
        assert spec_for("jurassic_park_corrected").max_gop_bits == 627760

    def test_gop12_at_24fps(self):
        assert JURASSIC_PARK.gop_size == 12
        assert JURASSIC_PARK.fps == 24.0


class TestBufferSizing:
    def test_paper_two_gop_buffer(self):
        # "the largest GOP size is 932710 bits or 113 Kbytes" -> two-GOP
        # buffer around 226 KB.
        assert buffer_bytes(2) == 2 * ((932710 + 7) // 8)
        assert 220_000 < buffer_bytes(2) < 240_000

    def test_explicit_max(self):
        assert buffer_bytes(1, max_gop_bits=800) == 100

    def test_invalid(self):
        with pytest.raises(TraceError):
            buffer_bytes(0)


class TestSpecValidation:
    def test_bad_values(self):
        with pytest.raises(TraceError):
            TraceSpec("x", max_gop_bits=0, gop_size=12, fps=24.0)
        with pytest.raises(TraceError):
            TraceSpec("x", max_gop_bits=10, gop_size=0, fps=24.0)
        with pytest.raises(TraceError):
            TraceSpec("x", max_gop_bits=10, gop_size=12, fps=0)
