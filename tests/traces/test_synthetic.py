"""Tests for the calibrated synthetic trace generator (repro.traces.synthetic)."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.media.gop import GOP_12
from repro.media.ldu import FrameType
from repro.traces.catalog import CATALOG, spec_for
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    calibrated_stream,
    generate_frame_sizes,
    synthetic_stream,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(TraceError):
            SyntheticTraceConfig(gop_count=0)
        with pytest.raises(TraceError):
            SyntheticTraceConfig(fps=0)
        with pytest.raises(TraceError):
            SyntheticTraceConfig(base_b_frame_bits=0)
        with pytest.raises(TraceError):
            SyntheticTraceConfig(activity_amplitude=1.5)


class TestGenerator:
    def test_deterministic(self):
        config = SyntheticTraceConfig(gop_count=10, seed=3)
        assert generate_frame_sizes(config) == generate_frame_sizes(config)

    def test_seed_changes_output(self):
        a = generate_frame_sizes(SyntheticTraceConfig(gop_count=10, seed=3))
        b = generate_frame_sizes(SyntheticTraceConfig(gop_count=10, seed=4))
        assert a != b

    def test_length(self):
        sizes = generate_frame_sizes(SyntheticTraceConfig(gop_count=5))
        assert len(sizes) == 5 * GOP_12.size

    def test_type_size_ordering(self):
        """On average I frames dwarf P frames dwarf B frames."""
        config = SyntheticTraceConfig(gop_count=60, seed=1)
        sizes = generate_frame_sizes(config)
        by_type = {FrameType.I: [], FrameType.P: [], FrameType.B: []}
        for i, size in enumerate(sizes):
            by_type[config.pattern.type_at(i)].append(size)
        means = {t: sum(v) / len(v) for t, v in by_type.items()}
        assert means[FrameType.I] > means[FrameType.P] > means[FrameType.B]

    def test_all_positive(self):
        sizes = generate_frame_sizes(SyntheticTraceConfig(gop_count=20, seed=2))
        assert all(size > 0 for size in sizes)


class TestSyntheticStream:
    def test_typed_correctly(self):
        stream = synthetic_stream(SyntheticTraceConfig(gop_count=4))
        assert stream[0].frame_type is FrameType.I
        assert stream[1].frame_type is FrameType.B
        assert stream[3].frame_type is FrameType.P

    def test_gop_metadata(self):
        stream = synthetic_stream(SyntheticTraceConfig(gop_count=4))
        assert stream[13].gop_index == 1


class TestCalibration:
    @pytest.mark.parametrize("movie", sorted(CATALOG))
    def test_exact_max_gop(self, movie):
        stream = calibrated_stream(movie, gop_count=12, seed=5)
        assert stream.max_gop_bits() == spec_for(movie).max_gop_bits

    def test_fps_from_spec(self):
        stream = calibrated_stream("star_wars", gop_count=4)
        assert stream.fps == 24.0

    def test_deterministic(self):
        a = calibrated_stream("star_wars", gop_count=6, seed=9)
        b = calibrated_stream("star_wars", gop_count=6, seed=9)
        assert [l.size_bits for l in a] == [l.size_bits for l in b]

    def test_no_gop_exceeds_target(self):
        stream = calibrated_stream("terminator", gop_count=20, seed=3)
        target = spec_for("terminator").max_gop_bits
        assert all(g.size_bits <= target for g in stream.gops)
