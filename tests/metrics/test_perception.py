"""Tests for perceptual thresholds (repro.metrics.perception)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.continuity import ContinuityReport
from repro.metrics.perception import (
    AUDIO_CLF_THRESHOLD,
    AUDIO_PROFILE,
    VIDEO_CLF_THRESHOLD,
    VIDEO_PROFILE,
    PerceptionProfile,
    profile_for,
)


class TestThresholds:
    def test_paper_values(self):
        assert VIDEO_CLF_THRESHOLD == 2
        assert AUDIO_CLF_THRESHOLD == 3

    def test_video_profile(self):
        assert VIDEO_PROFILE.acceptable_clf(2)
        assert not VIDEO_PROFILE.acceptable_clf(3)

    def test_audio_profile(self):
        assert AUDIO_PROFILE.acceptable_clf(3)
        assert not AUDIO_PROFILE.acceptable_clf(4)


class TestProfile:
    def test_acceptable_report(self):
        report = ContinuityReport(slots=10, unit_losses=2, clf=1)
        assert VIDEO_PROFILE.acceptable(report)

    def test_unacceptable_clf(self):
        report = ContinuityReport(slots=10, unit_losses=5, clf=5)
        assert not VIDEO_PROFILE.acceptable(report)

    def test_alf_threshold(self):
        profile = PerceptionProfile(name="strict", clf_threshold=3, alf_threshold=0.1)
        good = ContinuityReport(slots=100, unit_losses=5, clf=2)
        bad = ContinuityReport(slots=100, unit_losses=20, clf=2)
        assert profile.acceptable(good)
        assert not profile.acceptable(bad)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionProfile(name="x", clf_threshold=-1)
        with pytest.raises(ConfigurationError):
            PerceptionProfile(name="x", clf_threshold=1, alf_threshold=2.0)


class TestLookup:
    def test_known_kinds(self):
        assert profile_for("video") is VIDEO_PROFILE
        assert profile_for("audio") is AUDIO_PROFILE

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            profile_for("smellovision")
