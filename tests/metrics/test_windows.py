"""Tests for per-window series summaries (repro.metrics.windows)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.continuity import ContinuityReport
from repro.metrics.windows import WindowSeries, compare, summarize


class TestSummarize:
    def test_constant_series(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.mean == 2.0
        assert summary.deviation == 0.0
        assert summary.minimum == summary.maximum == 2.0

    def test_known_values(self):
        summary = summarize([1.0, 3.0])
        assert summary.mean == 2.0
        assert summary.deviation == 1.0  # population deviation

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_bounds(self, values):
        summary = summarize(values)
        ulp = 1e-9  # summation error can push the mean a few ulps out
        assert summary.minimum - ulp <= summary.mean <= summary.maximum + ulp
        assert summary.deviation >= 0


class TestWindowSeries:
    def test_add_reports(self):
        series = WindowSeries(label="x")
        series.add(ContinuityReport(slots=10, unit_losses=2, clf=2))
        series.add(ContinuityReport(slots=10, unit_losses=0, clf=0))
        assert len(series) == 2
        assert series.clf_summary.mean == 1.0
        assert series.alf_summary.mean == pytest.approx(0.1)

    def test_add_clf(self):
        series = WindowSeries()
        series.add_clf(3)
        assert list(series) == [3]

    def test_negative_clf_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSeries().add_clf(-1)

    def test_windows_within(self):
        series = WindowSeries()
        for clf in (0, 1, 2, 3, 4):
            series.add_clf(clf)
        assert series.windows_within(2) == pytest.approx(3 / 5)

    def test_windows_within_empty(self):
        with pytest.raises(ConfigurationError):
            WindowSeries().windows_within(2)

    def test_describe(self):
        series = WindowSeries(label="demo")
        series.add_clf(1)
        assert "demo" in series.describe()


class TestConfidenceIntervals:
    def test_mean_interval_contains_mean(self):
        from repro.metrics.windows import mean_confidence_interval

        low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low <= 2.5 <= high

    def test_mean_interval_single_value(self):
        from repro.metrics.windows import mean_confidence_interval

        assert mean_confidence_interval([5.0]) == (5.0, 5.0)

    def test_mean_interval_empty_rejected(self):
        from repro.metrics.windows import mean_confidence_interval

        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])

    def test_mean_interval_narrows_with_n(self):
        from repro.metrics.windows import mean_confidence_interval

        small = mean_confidence_interval([1.0, 2.0] * 5)
        large = mean_confidence_interval([1.0, 2.0] * 500)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_wilson_interval_bounds(self):
        from repro.metrics.windows import proportion_confidence_interval

        low, high = proportion_confidence_interval(12, 12)
        assert 0.7 < low < 1.0
        assert high == 1.0
        low0, high0 = proportion_confidence_interval(0, 12)
        assert low0 == 0.0 and high0 < 0.3

    def test_wilson_validation(self):
        from repro.metrics.windows import proportion_confidence_interval

        with pytest.raises(ConfigurationError):
            proportion_confidence_interval(1, 0)
        with pytest.raises(ConfigurationError):
            proportion_confidence_interval(5, 3)

    @given(
        st.integers(min_value=1, max_value=200).flatmap(
            lambda n: st.tuples(st.integers(min_value=0, max_value=n), st.just(n))
        )
    )
    @settings(max_examples=50)
    def test_wilson_contains_point_estimate(self, case):
        from repro.metrics.windows import proportion_confidence_interval

        successes, trials = case
        low, high = proportion_confidence_interval(successes, trials)
        p = successes / trials
        eps = 1e-9  # floating-point slack at the p = 0 / p = 1 corners
        assert 0.0 <= low <= p + eps
        assert p - eps <= high <= 1.0


class TestCompare:
    def test_improvements(self):
        scrambled = WindowSeries()
        unscrambled = WindowSeries()
        for a, b in [(1, 2), (1, 3), (0, 1)]:
            scrambled.add_clf(a)
            unscrambled.add_clf(b)
        mean_gain, dev_gain = compare(scrambled, unscrambled)
        assert mean_gain > 0
