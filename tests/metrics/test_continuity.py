"""Tests for ALF / CLF continuity metrics (repro.metrics.continuity)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.media.ldu import PlayoutRecord
from repro.metrics.continuity import (
    ContinuityReport,
    aggregate_loss,
    consecutive_loss,
    loss_indicator,
    measure,
    measure_lost_set,
)


class TestFigure1Examples:
    """The two example streams of the metrics paper's Figure 1."""

    def test_stream1(self):
        # four slots, unit losses at slots 1 and 2 (consecutive)
        report = measure_lost_set([1, 2], 4)
        assert report.alf == Fraction(2, 4)
        assert report.clf == 2

    def test_stream2(self):
        # same aggregate loss, spread out: slots 1 and 3
        report = measure_lost_set([1, 3], 4)
        assert report.alf == Fraction(2, 4)
        assert report.clf == 1


class TestConsecutiveLoss:
    def test_basic(self):
        assert consecutive_loss([0, 1, 1, 0, 1]) == 2

    def test_empty(self):
        assert consecutive_loss([]) == 0

    def test_all_lost(self):
        assert consecutive_loss([1] * 5) == 5

    def test_none_lost(self):
        assert consecutive_loss([0] * 5) == 0

    def test_invalid_value(self):
        with pytest.raises(ConfigurationError):
            consecutive_loss([0, 2])

    @given(st.lists(st.integers(min_value=0, max_value=1)))
    def test_bounded_by_total(self, indicator):
        assert consecutive_loss(indicator) <= sum(indicator)


class TestAggregateLoss:
    def test_counts(self):
        assert aggregate_loss([1, 0, 1, 1]) == (3, 4)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            aggregate_loss([3])


class TestMeasure:
    def test_with_records(self):
        records = [
            PlayoutRecord(slot=0, ldu_index=0),
            PlayoutRecord(slot=1, lost=True),
            PlayoutRecord(slot=2, ldu_index=1, repeated=True),
            PlayoutRecord(slot=3, ldu_index=3),
        ]
        report = measure(records)
        assert report.unit_losses == 2
        assert report.clf == 2
        assert report.alf_float == pytest.approx(0.5)

    def test_loss_indicator(self):
        records = [PlayoutRecord(slot=0, lost=True), PlayoutRecord(slot=1, ldu_index=1)]
        assert loss_indicator(records) == [1, 0]

    def test_empty_alf(self):
        report = ContinuityReport(slots=0, unit_losses=0, clf=0)
        assert report.alf == Fraction(0)


class TestMeasureLostSet:
    def test_docstring_case(self):
        report = measure_lost_set([2, 3, 7], 10)
        assert (report.unit_losses, report.clf) == (3, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_lost_set([10], 10)
        with pytest.raises(ConfigurationError):
            measure_lost_set([-1], 10)

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_lost_set([], -1)

    @given(
        st.integers(min_value=1, max_value=60).flatmap(
            lambda n: st.tuples(
                st.just(n), st.sets(st.integers(min_value=0, max_value=n - 1))
            )
        )
    )
    @settings(max_examples=60)
    def test_alf_matches_set_size(self, case):
        n, lost = case
        report = measure_lost_set(lost, n)
        assert report.unit_losses == len(lost)
        assert report.clf <= len(lost)


class TestReportValidation:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ContinuityReport(slots=-1, unit_losses=0, clf=0)

    def test_losses_bounded_by_slots(self):
        with pytest.raises(ConfigurationError):
            ContinuityReport(slots=2, unit_losses=3, clf=1)

    def test_clf_bounded_by_losses(self):
        with pytest.raises(ConfigurationError):
            ContinuityReport(slots=5, unit_losses=1, clf=2)
