"""Tests for rate and drift metrics (repro.metrics.rates)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.rates import (
    AppearanceTimeline,
    ideal_timeline,
    measure_drift,
    measure_rate,
    rate_factors,
)


class TestTimeline:
    def test_ideal_timeline_clean(self):
        timeline = ideal_timeline(30, fps=30.0)
        drift = measure_drift(timeline)
        assert drift.adf == 0.0
        assert drift.cdf == 0
        rate = measure_rate(timeline)
        assert rate.arf == 0.0
        assert rate.min_rate_factor == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AppearanceTimeline(appearance_times=(), fps=0)
        with pytest.raises(ConfigurationError):
            ideal_timeline(-1, fps=30)

    def test_drift_values(self):
        timeline = AppearanceTimeline(
            appearance_times=(0.0, 0.1, None), fps=10.0
        )
        assert timeline.drift(0) == pytest.approx(0.0)
        assert timeline.drift(1) == pytest.approx(0.0)
        assert timeline.drift(2) is None

    def test_start_time_offset(self):
        timeline = AppearanceTimeline(
            appearance_times=(5.0, 5.1), fps=10.0, start_time=5.0
        )
        assert measure_drift(timeline).adf == 0.0


class TestDrift:
    def test_late_ldus_drift(self):
        # every LDU late by a full slot
        timeline = AppearanceTimeline(
            appearance_times=tuple(0.1 + i / 10.0 for i in range(10)),
            fps=10.0,
        )
        report = measure_drift(timeline)
        assert report.adf == 1.0
        assert report.cdf == 10
        assert report.max_abs_drift_slots == pytest.approx(1.0)

    def test_tolerance_respected(self):
        timeline = AppearanceTimeline(
            appearance_times=tuple(0.02 + i / 10.0 for i in range(10)),
            fps=10.0,
        )
        # drift of 0.2 slots is within the default 0.5-slot tolerance
        assert measure_drift(timeline).adf == 0.0
        strict = measure_drift(timeline, tolerance_slots=0.1)
        assert strict.adf == 1.0

    def test_missing_ldus_count_as_drift(self):
        timeline = AppearanceTimeline(
            appearance_times=(0.0, None, None, 0.3), fps=10.0
        )
        report = measure_drift(timeline)
        assert report.drifting == 2
        assert report.cdf == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_drift(ideal_timeline(5, 10.0), tolerance_slots=-1)

    @given(st.floats(min_value=0.0, max_value=0.049))
    @settings(max_examples=20)
    def test_small_jitter_always_ok(self, jitter):
        timeline = AppearanceTimeline(
            appearance_times=tuple(jitter + i / 10.0 for i in range(10)),
            fps=10.0,
        )
        assert measure_drift(timeline).adf == 0.0


class TestRate:
    def test_slow_playout_detected(self):
        # played at half speed: appearance gap = 2 slots
        timeline = AppearanceTimeline(
            appearance_times=tuple(i * 0.2 for i in range(20)), fps=10.0
        )
        report = measure_rate(timeline)
        assert report.arf == 1.0
        assert report.min_rate_factor == pytest.approx(0.5)

    def test_fast_playout_detected(self):
        timeline = AppearanceTimeline(
            appearance_times=tuple(i * 0.05 for i in range(20)), fps=10.0
        )
        report = measure_rate(timeline)
        assert report.arf == 1.0
        assert report.max_rate_factor == pytest.approx(2.0)

    def test_rate_factors_window_too_small(self):
        with pytest.raises(ConfigurationError):
            rate_factors(ideal_timeline(10, 10.0), window=1)

    def test_sparse_window_is_violation(self):
        times = [None] * 10
        times[0] = 0.0
        timeline = AppearanceTimeline(appearance_times=tuple(times), fps=10.0)
        report = measure_rate(timeline, window=8)
        assert report.arf == 1.0  # unmeasurable windows count as violations

    def test_stall_then_catchup(self):
        # first half ideal, then a 1-second stall, then ideal again
        times = [i / 10.0 for i in range(10)] + [
            1.0 + 1.0 + i / 10.0 for i in range(10)
        ]
        timeline = AppearanceTimeline(appearance_times=tuple(times), fps=10.0)
        report = measure_rate(timeline, window=6)
        assert 0.0 < report.arf < 1.0  # only windows spanning the stall
        assert report.consecutive_violations >= 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_rate(ideal_timeline(10, 10.0), tolerance=-0.1)

    def test_empty_rate_report(self):
        report = measure_rate(ideal_timeline(4, 10.0), window=8)
        assert report.windows == 0
        assert report.arf == 0.0
