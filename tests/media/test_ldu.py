"""Tests for LDU primitives (repro.media.ldu)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.media.ldu import (
    AUDIO_SAMPLES_PER_LDU,
    FrameType,
    Ldu,
    PlayoutRecord,
    make_audio_ldus,
)


class TestFrameType:
    def test_anchor_property(self):
        assert FrameType.I.is_anchor
        assert FrameType.P.is_anchor
        assert not FrameType.B.is_anchor
        assert not FrameType.X.is_anchor

    def test_parse_from_value(self):
        assert FrameType("I") is FrameType.I
        assert FrameType("B") is FrameType.B

    def test_str(self):
        assert str(FrameType.P) == "P"


class TestLdu:
    def test_defaults(self):
        ldu = Ldu(index=0)
        assert ldu.frame_type is FrameType.X
        assert ldu.size_bits == 0

    def test_negative_index_rejected(self):
        with pytest.raises(StreamError):
            Ldu(index=-1)

    def test_negative_size_rejected(self):
        with pytest.raises(StreamError):
            Ldu(index=0, size_bits=-5)

    def test_size_bytes_rounds_up(self):
        assert Ldu(index=0, size_bits=9).size_bytes == 2
        assert Ldu(index=0, size_bits=8).size_bytes == 1
        assert Ldu(index=0, size_bits=0).size_bytes == 0

    def test_is_anchor(self):
        assert Ldu(index=0, frame_type=FrameType.I).is_anchor
        assert not Ldu(index=0, frame_type=FrameType.B).is_anchor

    def test_label(self):
        assert Ldu(index=7, frame_type=FrameType.B).label() == "B7"

    def test_frozen(self):
        ldu = Ldu(index=0)
        with pytest.raises(AttributeError):
            ldu.index = 3  # type: ignore[misc]


class TestPlayoutRecord:
    def test_unit_loss_cases(self):
        assert PlayoutRecord(slot=0, lost=True).is_unit_loss
        assert PlayoutRecord(slot=0, repeated=True).is_unit_loss
        assert not PlayoutRecord(slot=0, ldu_index=0).is_unit_loss


class TestAudio:
    def test_sizes(self):
        ldus = make_audio_ldus(3)
        assert [l.size_bits for l in ldus] == [AUDIO_SAMPLES_PER_LDU * 8] * 3

    def test_indices_consecutive(self):
        ldus = make_audio_ldus(5)
        assert [l.index for l in ldus] == [0, 1, 2, 3, 4]

    def test_negative_rejected(self):
        with pytest.raises(StreamError):
            make_audio_ldus(-1)

    def test_sixteen_bit(self):
        ldus = make_audio_ldus(1, bits_per_sample=16)
        assert ldus[0].size_bits == AUDIO_SAMPLES_PER_LDU * 16
