"""Tests for the MJPEG stream builder (repro.media.mjpeg)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.media.mjpeg import MjpegConfig, make_mjpeg_stream


class TestMjpegConfig:
    def test_validation(self):
        with pytest.raises(StreamError):
            MjpegConfig(frame_count=0)
        with pytest.raises(StreamError):
            MjpegConfig(quality=0)
        with pytest.raises(StreamError):
            MjpegConfig(quality=101)
        with pytest.raises(StreamError):
            MjpegConfig(width=0)
        with pytest.raises(StreamError):
            MjpegConfig(jitter_sigma=-1)

    def test_quality_scale_ijg(self):
        assert MjpegConfig(quality=50).quality_scale == pytest.approx(1.0)
        assert MjpegConfig(quality=25).quality_scale == pytest.approx(2.0)
        assert MjpegConfig(quality=100).quality_scale == pytest.approx(0.0, abs=1e-9)

    def test_higher_quality_bigger_frames(self):
        low = MjpegConfig(quality=30).mean_frame_bits
        mid = MjpegConfig(quality=60).mean_frame_bits
        high = MjpegConfig(quality=90).mean_frame_bits
        assert low < mid < high


class TestBuilder:
    def test_basic_properties(self):
        stream = make_mjpeg_stream(MjpegConfig(frame_count=120, seed=1))
        assert len(stream) == 120
        assert not stream.has_dependencies
        assert "mjpeg" in stream.name

    def test_deterministic(self):
        config = MjpegConfig(frame_count=60, seed=4)
        a = make_mjpeg_stream(config)
        b = make_mjpeg_stream(config)
        assert [l.size_bits for l in a] == [l.size_bits for l in b]

    def test_no_jitter_constant_within_scene(self):
        config = MjpegConfig(
            frame_count=30, scene_length_frames=30, jitter_sigma=0.0, seed=2
        )
        stream = make_mjpeg_stream(config)
        assert len({l.size_bits for l in stream}) == 1

    def test_scene_changes_change_sizes(self):
        config = MjpegConfig(
            frame_count=90, scene_length_frames=30, jitter_sigma=0.0, seed=2
        )
        stream = make_mjpeg_stream(config)
        assert len({l.size_bits for l in stream}) > 1

    def test_mean_rate_scales_with_quality(self):
        low = make_mjpeg_stream(MjpegConfig(frame_count=100, quality=30, seed=3))
        high = make_mjpeg_stream(MjpegConfig(frame_count=100, quality=90, seed=3))
        assert high.mean_bitrate_bps > low.mean_bitrate_bps

    def test_streams_through_protocol(self):
        """An MJPEG stream runs through the full protocol engine."""
        from repro.core.protocol import ProtocolConfig, run_session

        stream = make_mjpeg_stream(MjpegConfig(frame_count=120, seed=5))
        config = ProtocolConfig(
            gops_per_window=1,
            gop_size=30,
            bandwidth_bps=5_000_000,
            p_bad=0.6,
            seed=6,
        )
        result = run_session(stream, config)
        assert len(result.windows) == 4
        assert all(w.retransmissions == 0 for w in result.windows)
