"""Tests for the audio stream builder (repro.media.audio)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.media.audio import (
    AudioConfig,
    make_audio_stream,
    talk_spurt_activity,
    voice_activity_factor,
)
from repro.media.ldu import AUDIO_SAMPLES_PER_LDU


class TestAudioConfig:
    def test_defaults(self):
        config = AudioConfig()
        assert config.ldu_count == 1800
        assert config.active_ldu_bits == AUDIO_SAMPLES_PER_LDU * 8

    def test_validation(self):
        with pytest.raises(StreamError):
            AudioConfig(duration_seconds=0)
        with pytest.raises(StreamError):
            AudioConfig(ldu_rate=0)
        with pytest.raises(StreamError):
            AudioConfig(bits_per_sample=0)
        with pytest.raises(StreamError):
            AudioConfig(mean_talk_spurt_seconds=0)


class TestBuilder:
    def test_constant_sizes_without_suppression(self):
        stream = make_audio_stream(AudioConfig(duration_seconds=2))
        assert len(stream) == 60
        assert len({ldu.size_bits for ldu in stream}) == 1

    def test_no_dependencies(self):
        stream = make_audio_stream(AudioConfig(duration_seconds=1))
        assert not stream.has_dependencies

    def test_suppression_shrinks_silent_ldus(self):
        config = AudioConfig(duration_seconds=30, silence_suppression=True, seed=1)
        stream = make_audio_stream(config)
        sizes = {ldu.size_bits for ldu in stream}
        assert config.comfort_noise_bits in sizes
        assert config.active_ldu_bits in sizes

    def test_activity_factor_reasonable(self):
        config = AudioConfig(
            duration_seconds=300, silence_suppression=True, seed=2
        )
        stream = make_audio_stream(config)
        factor = voice_activity_factor(stream, config)
        # mean talk 1.2s / (1.2 + 1.8) = 40% expected activity
        assert 0.25 < factor < 0.55

    def test_deterministic(self):
        config = AudioConfig(duration_seconds=10, silence_suppression=True, seed=5)
        a = make_audio_stream(config)
        b = make_audio_stream(config)
        assert [l.size_bits for l in a] == [l.size_bits for l in b]


class TestTalkSpurts:
    def test_length(self):
        config = AudioConfig(duration_seconds=10, seed=1)
        assert len(talk_spurt_activity(config)) == config.ldu_count

    def test_alternates(self):
        config = AudioConfig(duration_seconds=120, seed=3)
        activity = talk_spurt_activity(config)
        transitions = sum(1 for a, b in zip(activity, activity[1:]) if a != b)
        assert transitions > 10  # spurts and silences both occur
