"""Tests for GOP structures (repro.media.gop)."""

from __future__ import annotations

import pytest

from repro.errors import GopPatternError
from repro.media.gop import GOP_12, GOP_15, Gop, GopPattern, group_into_gops
from repro.media.ldu import FrameType, Ldu


class TestGopPattern:
    def test_parse(self):
        pattern = GopPattern.parse("IBBPBB")
        assert pattern.size == 6
        assert str(pattern) == "IBBPBB"

    def test_standard_patterns(self):
        assert GOP_12.size == 12
        assert GOP_15.size == 15
        assert GOP_12.b_count == 8
        assert GOP_12.p_count == 3

    def test_must_start_with_i(self):
        with pytest.raises(GopPatternError):
            GopPattern.parse("BIP")

    def test_single_i_only(self):
        with pytest.raises(GopPatternError):
            GopPattern.parse("IPPI")

    def test_no_x_frames(self):
        with pytest.raises(GopPatternError):
            GopPattern.parse("IX")

    def test_empty_rejected(self):
        with pytest.raises(GopPatternError):
            GopPattern.parse("")

    def test_invalid_char(self):
        with pytest.raises(GopPatternError):
            GopPattern.parse("IQZ")

    def test_positions(self):
        assert GOP_12.anchor_positions == (0, 3, 6, 9)
        assert GOP_12.b_positions == (1, 2, 4, 5, 7, 8, 10, 11)

    def test_type_at_wraps(self):
        assert GOP_12.type_at(12) is FrameType.I
        assert GOP_12.type_at(13) is FrameType.B
        assert GOP_12.type_at(15) is FrameType.P

    def test_lowercase_accepted(self):
        assert GopPattern.parse("ibbp").size == 4


class TestGop:
    def _ldus(self, types, start=0):
        return tuple(
            Ldu(index=start + i, frame_type=t, size_bits=100)
            for i, t in enumerate(types)
        )

    def test_properties(self):
        gop = Gop(index=0, ldus=self._ldus([FrameType.I, FrameType.B, FrameType.P]))
        assert gop.size == 3
        assert gop.size_bits == 300
        assert len(gop.anchors) == 2
        assert len(gop.b_frames) == 1
        assert len(list(gop)) == 3

    def test_must_start_with_i(self):
        with pytest.raises(GopPatternError):
            Gop(index=0, ldus=self._ldus([FrameType.B]))

    def test_empty_rejected(self):
        with pytest.raises(GopPatternError):
            Gop(index=0, ldus=())


class TestGrouping:
    def test_group_into_gops(self, small_mpeg_stream):
        gops = group_into_gops(small_mpeg_stream.ldus)
        assert len(gops) == 6
        assert all(g.size == 12 for g in gops)
        assert [g.index for g in gops] == list(range(6))

    def test_empty(self):
        assert group_into_gops([]) == []

    def test_must_start_with_i(self):
        ldus = [Ldu(index=0, frame_type=FrameType.B)]
        with pytest.raises(GopPatternError):
            group_into_gops(ldus)
