"""Tests for stream containers (repro.media.stream)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.media.gop import GOP_12
from repro.media.ldu import FrameType, Ldu
from repro.media.stream import (
    MediaStream,
    VideoStream,
    make_independent_stream,
    make_video_stream,
)


class TestMediaStream:
    def test_indices_must_be_consecutive(self):
        with pytest.raises(StreamError):
            MediaStream(ldus=(Ldu(index=1),))

    def test_fps_positive(self):
        with pytest.raises(StreamError):
            MediaStream(ldus=(), fps=0)

    def test_duration_and_rate(self):
        stream = make_independent_stream(60, size_bits=1000, fps=30.0)
        assert stream.duration_seconds == pytest.approx(2.0)
        assert stream.slot_duration == pytest.approx(1 / 30)
        assert stream.total_bits == 60_000
        assert stream.mean_bitrate_bps == pytest.approx(30_000)

    def test_slot_time(self):
        stream = make_independent_stream(10, fps=10.0)
        assert stream.slot_time(5) == pytest.approx(0.5)

    def test_windows_exact(self):
        stream = make_independent_stream(20)
        windows = list(stream.windows(5))
        assert len(windows) == 4
        assert all(len(w) == 5 for w in windows)

    def test_windows_partial_tail(self):
        stream = make_independent_stream(23)
        windows = list(stream.windows(5))
        assert len(windows) == 5
        assert len(windows[-1]) == 3

    def test_windows_invalid_size(self):
        with pytest.raises(StreamError):
            list(make_independent_stream(5).windows(0))

    def test_window_slice(self):
        stream = make_independent_stream(10)
        window = stream.window(2, 3)
        assert [l.index for l in window] == [2, 3, 4]

    def test_window_negative(self):
        with pytest.raises(StreamError):
            make_independent_stream(5).window(-1, 2)

    def test_sequence_protocol(self):
        stream = make_independent_stream(4)
        assert len(stream) == 4
        assert stream[1].index == 1
        assert [l.index for l in stream] == [0, 1, 2, 3]

    def test_no_dependencies(self):
        assert not make_independent_stream(5).has_dependencies


class TestVideoStream:
    def test_make_video_stream(self):
        stream = make_video_stream(GOP_12, gop_count=3)
        assert len(stream) == 36
        assert stream.has_dependencies
        assert stream.gop_size == 12

    def test_pattern_mismatch_rejected(self):
        ldus = tuple(
            Ldu(index=i, frame_type=FrameType.I if i == 0 else FrameType.I)
            for i in range(2)
        )
        with pytest.raises(StreamError):
            VideoStream(ldus=ldus, pattern=GOP_12)

    def test_custom_sizes(self):
        sizes = list(range(24))
        stream = make_video_stream(GOP_12, gop_count=2, sizes_bits=sizes)
        assert [l.size_bits for l in stream] == sizes

    def test_sizes_length_checked(self):
        with pytest.raises(StreamError):
            make_video_stream(GOP_12, gop_count=2, sizes_bits=[1, 2, 3])

    def test_gops_and_max_gop(self):
        stream = make_video_stream(GOP_12, gop_count=3)
        gops = stream.gops
        assert len(gops) == 3
        assert stream.max_gop_bits() == max(g.size_bits for g in gops)

    def test_gop_size_requires_pattern(self):
        stream = make_independent_stream(5)
        video = VideoStream(ldus=stream.ldus, fps=stream.fps)
        with pytest.raises(StreamError):
            _ = video.gop_size

    def test_default_sizes_by_type(self):
        stream = make_video_stream(GOP_12, gop_count=1)
        i_frame = stream[0]
        p_frame = stream[3]
        b_frame = stream[1]
        assert i_frame.size_bits > p_frame.size_bits > b_frame.size_bits

    def test_gop_metadata(self):
        stream = make_video_stream(GOP_12, gop_count=2)
        assert stream[13].gop_index == 1
        assert stream[13].position_in_gop == 1
