"""Tests for the H.261 builder and its end-to-end behaviour."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.media.h261 import H261Config, make_h261_stream
from repro.media.ldu import FrameType


class TestConfig:
    def test_validation(self):
        with pytest.raises(StreamError):
            H261Config(frame_count=0)
        with pytest.raises(StreamError):
            H261Config(intra_interval=0)
        with pytest.raises(StreamError):
            H261Config(intra_interval=200)  # standard forbids > 132
        with pytest.raises(StreamError):
            H261Config(intra_bits=0)


class TestBuilder:
    def test_intra_placement(self):
        stream = make_h261_stream(H261Config(frame_count=36, intra_interval=12))
        for i, ldu in enumerate(stream):
            expected = FrameType.I if i % 12 == 0 else FrameType.P
            assert ldu.frame_type is expected

    def test_intra_frames_bigger_on_average(self):
        stream = make_h261_stream(H261Config(frame_count=300, seed=2))
        intra = [l.size_bits for l in stream if l.frame_type is FrameType.I]
        inter = [l.size_bits for l in stream if l.frame_type is FrameType.P]
        assert sum(intra) / len(intra) > 2 * sum(inter) / len(inter)

    def test_deterministic(self):
        config = H261Config(frame_count=60, seed=9)
        assert [l.size_bits for l in make_h261_stream(config)] == [
            l.size_bits for l in make_h261_stream(config)
        ]

    def test_no_jitter_exact_sizes(self):
        config = H261Config(frame_count=24, jitter_sigma=0.0)
        stream = make_h261_stream(config)
        assert stream[0].size_bits == config.intra_bits
        assert stream[1].size_bits == config.inter_bits


class TestLayering:
    def test_chain_decomposition(self):
        """A window of two intra periods decomposes into one layer per
        chain position: interval many layers, two frames each."""
        from repro.core.layered import LayeredScheduler
        from repro.poset.builders import ldu_poset

        stream = make_h261_stream(H261Config(frame_count=24, intra_interval=12))
        window = stream.window(0, 24)
        scheduler = LayeredScheduler(ldu_poset(window))
        assert scheduler.layer_count == 12
        assert all(layer.size == 2 for layer in scheduler.layers)
        # every layer except the chain tails is critical
        assert scheduler.critical_indices() == list(range(11))

    def test_mpeg_poset_builder_handles_ip_only(self):
        """The MPEG dependency rules degenerate correctly to H.261:
        each P depends on its predecessor (chain)."""
        from repro.poset.builders import ldu_poset

        stream = make_h261_stream(H261Config(frame_count=12, intra_interval=12))
        poset = ldu_poset(stream.window(0, 12))
        assert poset.le(5, 0)      # P5 transitively needs I0
        assert poset.covers(5, 4)  # direct predecessor reference


class TestEndToEnd:
    def test_protocol_session(self):
        from repro.core.protocol import ProtocolConfig, run_session

        stream = make_h261_stream(
            H261Config(frame_count=240, intra_interval=12, seed=3)
        )
        config = ProtocolConfig(
            gops_per_window=2,
            gop_size=12,
            p_bad=0.6,
            seed=5,
            bandwidth_bps=2_000_000,
        )
        result = run_session(stream, config)
        assert len(result.windows) == 10
        # chains amplify losses: a lost P kills the chain suffix, so
        # retransmission traffic must exist on a bursty channel
        assert sum(w.retransmissions for w in result.windows) > 0

    def test_scrambling_not_harmful_for_chains(self):
        """H.261 is the adversarial case for spreading (almost nothing is
        permutable); the scheme must not do worse than in-order."""
        from repro.core.protocol import ProtocolConfig, compare_schemes

        stream = make_h261_stream(
            H261Config(frame_count=480, intra_interval=12, seed=3)
        )
        config = ProtocolConfig(
            gops_per_window=2, gop_size=12, p_bad=0.6, seed=11,
            bandwidth_bps=2_000_000,
        )
        scrambled, unscrambled = compare_schemes(stream, config)
        assert scrambled.mean_clf <= unscrambled.mean_clf + 0.5
