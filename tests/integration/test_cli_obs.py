"""Tests for the ``repro obs`` CLI and ``experiments --metrics``."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.manifest import load_manifest, validate_manifest


@pytest.fixture(autouse=True)
def _metrics_off_afterwards():
    yield
    obs.disable()


class TestObsDump:
    def test_dump_to_stdout(self):
        out = io.StringIO()
        assert main(["obs", "dump", "table1", "--quiet"], out=out) == 0
        manifest = json.loads(out.getvalue())
        assert manifest["experiment"] == "table1"
        assert validate_manifest(manifest) == []

    def test_dump_to_file_renders_table(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "table1.json"
        assert main(["obs", "dump", "table1", "--out", str(target)], out=out) == 0
        text = out.getvalue()
        assert "Table 1" in text
        assert f"wrote manifest to {target}" in text
        manifest = load_manifest(target)
        assert validate_manifest(manifest) == []
        assert manifest["metrics"]["counters"]["accel.calls.worst_clf"] > 0

    def test_underscore_name_accepted(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "m.json"
        code = main(
            ["obs", "dump", "theorem1", "--quiet", "--out", str(target)], out=out
        )
        assert code == 0
        assert load_manifest(target)["experiment"] == "theorem1"


class TestObsDiffAndValidate:
    def test_diff_identical_exits_zero(self, tmp_path):
        out = io.StringIO()
        a = tmp_path / "a.json"
        main(["obs", "dump", "table1", "--quiet", "--out", str(a)], out=out)
        manifest = load_manifest(a)
        b = tmp_path / "b.json"
        b.write_text(json.dumps(manifest))
        out = io.StringIO()
        assert main(["obs", "diff", str(a), str(b)], out=out) == 0
        assert "identical" in out.getvalue()

    def test_diff_different_exits_one(self, tmp_path):
        out = io.StringIO()
        a = tmp_path / "a.json"
        main(["obs", "dump", "table1", "--quiet", "--out", str(a)], out=out)
        manifest = load_manifest(a)
        manifest["metrics"]["counters"]["accel.calls.worst_clf"] += 1
        b = tmp_path / "b.json"
        b.write_text(json.dumps(manifest))
        out = io.StringIO()
        assert main(["obs", "diff", str(a), str(b)], out=out) == 1
        assert "accel.calls.worst_clf" in out.getvalue()

    def test_validate_good_manifest(self, tmp_path):
        out = io.StringIO()
        a = tmp_path / "a.json"
        main(["obs", "dump", "table1", "--quiet", "--out", str(a)], out=out)
        out = io.StringIO()
        assert main(["obs", "validate", str(a)], out=out) == 0
        assert "valid run manifest" in out.getvalue()

    def test_validate_bad_manifest(self, tmp_path):
        out = io.StringIO()
        a = tmp_path / "a.json"
        main(["obs", "dump", "table1", "--quiet", "--out", str(a)], out=out)
        manifest = load_manifest(a)
        manifest["backend"] = "cuda"
        a.write_text(json.dumps(manifest))
        out = io.StringIO()
        assert main(["obs", "validate", str(a)], out=out) == 1
        assert "cuda" in out.getvalue()


class TestExperimentsMetricsFlag:
    def test_metrics_flag_writes_manifest(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "experiments",
                "table1",
                "--metrics",
                "--manifest-dir",
                str(tmp_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "=== table1 ===" in text
        assert "[manifest " in text
        manifest = load_manifest(tmp_path / "table1.json")
        assert validate_manifest(manifest) == []
        assert manifest["experiment"] == "table1"
