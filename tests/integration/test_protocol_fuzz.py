"""Property-based fuzzing of the protocol engine over random configs.

Every generated session must satisfy the engine's structural invariants
regardless of channel behaviour, window size or stream shape.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GopPattern
from repro.media.stream import make_independent_stream, make_video_stream

patterns = st.sampled_from(
    [
        GopPattern.parse("IBBPBB"),
        GopPattern.parse("IBBPBBPBBPBB"),
        GopPattern.parse("IPPP"),
        GopPattern.parse("IB"),
    ]
)


@st.composite
def video_sessions(draw):
    pattern = draw(patterns)
    gops = draw(st.integers(min_value=2, max_value=6))
    stream = make_video_stream(pattern, gop_count=gops)
    config = ProtocolConfig(
        gops_per_window=draw(st.integers(min_value=1, max_value=2)),
        gop_size=pattern.size,
        bandwidth_bps=draw(st.sampled_from([400_000.0, 1_200_000.0, 8_000_000.0])),
        rtt=draw(st.sampled_from([0.0, 0.023, 0.2])),
        p_good=draw(st.sampled_from([1.0, 0.95, 0.9, 0.8])),
        p_bad=draw(st.sampled_from([0.0, 0.5, 0.8])),
        layered=draw(st.booleans()),
        scramble=draw(st.booleans()),
        retransmit_anchors=draw(st.booleans()),
        lossy_feedback=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return stream, config


@given(video_sessions())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_session_invariants(case):
    stream, config = case
    result = run_session(stream, config)
    assert len(result.windows) >= 1
    for window in result.windows:
        # transmission order is a permutation of the window
        assert sorted(window.transmission_order) == list(range(window.frames))
        # accounting closes
        assert window.sent + window.dropped_at_sender == window.frames
        assert window.lost_in_network <= window.sent
        # playout consistency
        assert window.decodable <= window.received
        assert 0 <= window.clf <= window.unit_losses <= window.frames
        assert 0.0 <= window.alf <= 1.0
        # layer bookkeeping covers the window exactly once
        assert sum(window.layer_sizes.values()) == window.frames
        for layer, burst in window.layer_bursts.items():
            assert 0 <= burst <= window.layer_sizes[layer]
    assert result.acks_sent == len(result.windows)
    assert result.acks_used + result.acks_lost <= result.acks_sent
    assert result.packets_lost <= result.packets_offered


@given(
    st.integers(min_value=10, max_value=80),
    st.integers(min_value=2, max_value=40),
    st.sampled_from([0.0, 0.5, 0.9]),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_independent_stream_invariants(count, window, p_bad, seed):
    stream = make_independent_stream(count, fps=30.0)
    config = ProtocolConfig(
        gops_per_window=1,
        gop_size=window,
        p_good=0.9,
        p_bad=p_bad,
        bandwidth_bps=4_000_000.0,
        seed=seed,
    )
    result = run_session(stream, config)
    for result_window in result.windows:
        # independent streams: single flat layer, nothing retransmitted
        assert result_window.retransmissions == 0
        assert list(result_window.layer_sizes) == [0]


def test_lossless_channel_is_invariant_under_everything():
    """With no loss and ample bandwidth, every mode plays out cleanly."""
    stream = make_video_stream(GopPattern.parse("IBBPBB"), gop_count=4)
    for layered in (False, True):
        for scramble in (False, True):
            config = ProtocolConfig(
                gops_per_window=2,
                gop_size=6,
                p_good=1.0,
                p_bad=0.0,
                bandwidth_bps=50_000_000.0,
                layered=layered,
                scramble=scramble,
                lossy_feedback=False,
            )
            result = run_session(stream, config)
            assert result.mean_clf == 0.0
