"""Property-based fuzzing of the protocol engine over random configs.

Every generated session must satisfy the engine's structural invariants
regardless of channel behaviour, window size or stream shape.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GopPattern
from repro.media.stream import make_independent_stream, make_video_stream

patterns = st.sampled_from(
    [
        GopPattern.parse("IBBPBB"),
        GopPattern.parse("IBBPBBPBBPBB"),
        GopPattern.parse("IPPP"),
        GopPattern.parse("IB"),
    ]
)


@st.composite
def video_sessions(draw):
    pattern = draw(patterns)
    gops = draw(st.integers(min_value=2, max_value=6))
    stream = make_video_stream(pattern, gop_count=gops)
    config = ProtocolConfig(
        gops_per_window=draw(st.integers(min_value=1, max_value=2)),
        gop_size=pattern.size,
        bandwidth_bps=draw(st.sampled_from([400_000.0, 1_200_000.0, 8_000_000.0])),
        rtt=draw(st.sampled_from([0.0, 0.023, 0.2])),
        p_good=draw(st.sampled_from([1.0, 0.95, 0.9, 0.8])),
        p_bad=draw(st.sampled_from([0.0, 0.5, 0.8])),
        layered=draw(st.booleans()),
        scramble=draw(st.booleans()),
        retransmit_anchors=draw(st.booleans()),
        lossy_feedback=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return stream, config


@given(video_sessions())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_session_invariants(case):
    stream, config = case
    result = run_session(stream, config)
    assert len(result.windows) >= 1
    for window in result.windows:
        # transmission order is a permutation of the window
        assert sorted(window.transmission_order) == list(range(window.frames))
        # accounting closes
        assert window.sent + window.dropped_at_sender == window.frames
        assert window.lost_in_network <= window.sent
        # playout consistency
        assert window.decodable <= window.received
        assert 0 <= window.clf <= window.unit_losses <= window.frames
        assert 0.0 <= window.alf <= 1.0
        # layer bookkeeping covers the window exactly once
        assert sum(window.layer_sizes.values()) == window.frames
        for layer, burst in window.layer_bursts.items():
            assert 0 <= burst <= window.layer_sizes[layer]
    assert result.acks_sent == len(result.windows)
    assert result.acks_used + result.acks_lost <= result.acks_sent
    assert result.packets_lost <= result.packets_offered


@given(
    st.integers(min_value=10, max_value=80),
    st.integers(min_value=2, max_value=40),
    st.sampled_from([0.0, 0.5, 0.9]),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_independent_stream_invariants(count, window, p_bad, seed):
    stream = make_independent_stream(count, fps=30.0)
    config = ProtocolConfig(
        gops_per_window=1,
        gop_size=window,
        p_good=0.9,
        p_bad=p_bad,
        bandwidth_bps=4_000_000.0,
        seed=seed,
    )
    result = run_session(stream, config)
    for result_window in result.windows:
        # independent streams: single flat layer, nothing retransmitted
        assert result_window.retransmissions == 0
        assert list(result_window.layer_sizes) == [0]


@given(
    video_sessions(),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_ack_channel_abuse_never_breaks_the_controller(case, chaos_seed):
    """Randomized ACK loss, duplication and reordering through
    ``_drain_acks`` must never crash, and every burst estimate must stay
    within its documented clamp (estimate in [0, window], integer bound
    in [1, window])."""
    import random

    from repro.core.protocol import ProtocolSession

    stream, config = case
    rng = random.Random(chaos_seed)
    session = ProtocolSession(stream, config)
    windows = list(stream.windows(config.window_frames))[:4]
    for index, window in enumerate(windows):
        session.run_window(index, window)
        # Abuse the in-flight ACKs the engine is about to drain: lose
        # some, duplicate some, jitter arrival times and shuffle.
        mutated = []
        for arrives_at, feedback in session._pending_acks:
            roll = rng.random()
            if roll < 0.3:
                continue  # lost in the network
            jittered = max(0.0, arrives_at + rng.uniform(-0.5, 0.5))
            mutated.append((jittered, feedback))
            if roll > 0.7:  # duplicated by the network
                mutated.append((jittered + rng.uniform(0.0, 0.3), feedback))
        rng.shuffle(mutated)
        session._pending_acks = mutated
    result = session.result
    # The controller survived; its estimates respect the clamp.
    for layer, estimator in session.controller.layers.items():
        assert 0.0 <= estimator.estimate <= estimator.window
        assert 1 <= estimator.burst_bound <= estimator.window
    # The Gilbert fit stayed a probability model.
    assert 0.0 <= session.channel_estimator.p_bad < 1.0
    assert 0.0 <= session.channel_estimator.p_good <= 1.0
    assert 0.0 <= session.channel_estimator.loss_rate <= 1.0
    # Feedback accounting still closes: every ACK was sent once per
    # window, and the engine never used more than it saw arrive.
    assert result.acks_sent == len(result.windows)
    assert result.acks_used <= result.acks_sent + result.acks_sent  # duplicates
    for window_result in result.windows:
        assert window_result.sent + window_result.dropped_at_sender == (
            window_result.frames
        )


def test_stale_and_duplicate_acks_are_ignored():
    """A duplicated ACK must fold into Equation 1 exactly once, and a
    reordered (stale) ACK not at all."""
    from repro.core.protocol import ProtocolSession

    stream = make_video_stream(GopPattern.parse("IBBPBB"), gop_count=4)
    config = ProtocolConfig(
        gops_per_window=1,
        gop_size=6,
        p_good=0.9,
        p_bad=0.5,
        lossy_feedback=False,
        seed=3,
    )
    session = ProtocolSession(stream, config)
    windows = list(stream.windows(config.window_frames))
    session.run_window(0, windows[0])
    (pending0,) = session._pending_acks
    stale_feedback = pending0[1]  # sequence 0, kept for replay below
    # Duplicate window 0's ACK three times.  It is in flight during
    # window 1 (one ACK round trip) and drains at window 2's start,
    # where Equation 1 must fold it exactly once.
    session._pending_acks = [pending0] * 3
    session.run_window(1, windows[1])
    (pending1,) = [
        item for item in session._pending_acks if item[1].sequence == 1
    ]
    session.run_window(2, windows[2])
    assert session.result.acks_used == 1
    assert session.collector.ignored_stale == 2
    # Replay the old sequence-0 ACK *behind* window 1's newer one: the
    # collector must flag the reordered copy as stale and ignore it.
    session._pending_acks = [pending1, (pending1[0], stale_feedback)]
    session.run_window(3, windows[3])
    assert session.result.acks_used == 2
    assert session.collector.ignored_stale == 3


def test_lossless_channel_is_invariant_under_everything():
    """With no loss and ample bandwidth, every mode plays out cleanly."""
    stream = make_video_stream(GopPattern.parse("IBBPBB"), gop_count=4)
    for layered in (False, True):
        for scramble in (False, True):
            config = ProtocolConfig(
                gops_per_window=2,
                gop_size=6,
                p_good=1.0,
                p_bad=0.0,
                bandwidth_bps=50_000_000.0,
                layered=layered,
                scramble=scramble,
                lossy_feedback=False,
            )
            result = run_session(stream, config)
            assert result.mean_clf == 0.0
