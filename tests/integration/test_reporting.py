"""Tests for the reporting helpers (repro.experiments.reporting)."""

from __future__ import annotations

from repro.experiments.reporting import (
    format_cell,
    render_loss_map,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_float_two_decimals(self):
        assert format_cell(1.23456) == "1.23"

    def test_int_plain(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["name", "value"],
            [("a", 1), ("long-name", 22)],
            title="demo",
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # columns align: 'value' header starts where values start
        header_col = lines[1].index("value")
        assert lines[3][header_col:].startswith("1")

    def test_no_title(self):
        table = render_table(["a"], [(1,)])
        assert table.splitlines()[0] == "a"

    def test_wide_cells_stretch_columns(self):
        table = render_table(["h"], [("wider-than-header",)])
        lines = table.splitlines()
        assert len(lines[1]) >= len("wider-than-header")

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestRenderLossMap:
    class _Window:
        def __init__(self, frames, decodable):
            self.frames = frames
            self.decodable = decodable

    def test_map_rows(self):
        windows = [
            self._Window(4, {0, 2, 3}),
            self._Window(4, set()),
        ]
        text = render_loss_map(windows, label="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].endswith(".x..")
        assert lines[2].endswith("xxxx")

    def test_truncation(self):
        windows = [self._Window(2, {0, 1})] * 5
        text = render_loss_map(windows, max_windows=3)
        assert "not shown" in text
        assert text.count("w0") == 3

    def test_protocol_windows_accepted(self):
        from repro.core.protocol import ProtocolConfig, run_session
        from repro.media.gop import GOP_12
        from repro.media.stream import make_video_stream

        stream = make_video_stream(GOP_12, gop_count=2)
        result = run_session(
            stream,
            ProtocolConfig(p_good=1.0, p_bad=0.0, lossy_feedback=False,
                           bandwidth_bps=50_000_000.0),
        )
        text = render_loss_map(result.windows)
        assert "x" not in text.splitlines()[1]


class TestRenderSeries:
    def test_chunks(self):
        text = render_series("label", list(range(60)), per_line=25)
        lines = text.splitlines()
        assert lines[0] == "label"
        assert len(lines) == 4  # 25 + 25 + 10
        assert "[  0.. 24]" in lines[1]
        assert "[ 50.. 59]" in lines[3]

    def test_empty_series(self):
        assert render_series("empty", []) == "empty"
