"""Integration: the public API flows a downstream user would write."""

from __future__ import annotations

import repro
from repro import (
    ErrorSpreader,
    GilbertModel,
    ProtocolConfig,
    calculate_permutation,
    calibrated_stream,
    compare_schemes,
    measure_lost_set,
    run_session,
    worst_case_clf,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestQuickstartFlow:
    """The README quickstart, executed."""

    def test_quickstart(self):
        spreader = ErrorSpreader(n=24, b=8)
        sent = spreader.scramble(list(range(24)))
        assert sorted(sent) == list(range(24))
        back = spreader.unscramble(sent)
        assert back == list(range(24))
        clf = spreader.clf_for_lost_slots(range(4, 12))
        assert clf == 1  # burst of 8 <= 24/2 -> CLF 1 guaranteed

    def test_permutation_certificate(self):
        perm = calculate_permutation(24, 8)
        assert worst_case_clf(perm, 8) == 1


class TestStreamingFlow:
    def test_mpeg_session_end_to_end(self):
        stream = calibrated_stream("jurassic_park_corrected", gop_count=20, seed=3)
        config = ProtocolConfig(p_bad=0.6, seed=17)
        scrambled, unscrambled = compare_schemes(stream, config, max_windows=10)
        assert len(scrambled.windows) == 10
        assert scrambled.mean_clf <= unscrambled.mean_clf + 0.5

    def test_measurement_pipeline(self):
        """Channel -> lost slots -> permutation -> playback CLF."""
        model = GilbertModel(p_good=0.9, p_bad=0.6, seed=5)
        outcomes = model.losses(24)
        lost_slots = [i for i, lost in enumerate(outcomes) if lost]
        spreader = ErrorSpreader(24, 12)
        scrambled_clf = spreader.clf_for_lost_slots(lost_slots)
        in_order_clf = measure_lost_set(lost_slots, 24).clf
        assert scrambled_clf <= in_order_clf


class TestAudioFlow:
    def test_audio_stream_session(self):
        from repro.media import make_audio_ldus
        from repro.media.stream import MediaStream

        ldus = tuple(make_audio_ldus(240))
        stream = MediaStream(ldus=ldus, fps=30.0, name="phone")
        config = ProtocolConfig(
            gops_per_window=1,
            gop_size=30,
            p_bad=0.6,
            seed=4,
            bandwidth_bps=256_000,
        )
        result = run_session(stream, config)
        assert len(result.windows) == 8
        # Audio LDUs are independent: a single layer, no retransmissions.
        assert all(w.retransmissions == 0 for w in result.windows)
