"""The regression gate itself must not pass silently.

``tools/bench_compare.py`` guards the perf gates in CI; these tests pin
its two sharp edges: a ``--tag`` run must never fall back to another
family's recording as its implicit baseline, and a run with no baseline
at all must exit non-zero unless ``--allow-missing-baseline`` opts in —
a missing baseline that exits 0 would let every regression through.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO / "tools" / "bench_compare.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def _write_recording(path: pathlib.Path, means: dict) -> None:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )


@pytest.fixture
def fake_runner(monkeypatch, bench_compare):
    """Replace the pytest subprocess with a canned recording writer."""

    def install(means: dict) -> None:
        def _run(json_path, pytest_args, bench_path):
            _write_recording(json_path, means)
            return 0

        monkeypatch.setattr(bench_compare, "run_benchmarks", _run)

    return install


class TestImplicitBaseline:
    def test_tagged_run_ignores_untagged_recordings(
        self, tmp_path, bench_compare
    ):
        means = {"bench::one": 1.0}
        untagged = tmp_path / "BENCH_aaa.json"
        _write_recording(untagged, means)
        current = tmp_path / "BENCH_bbb_kernel.json"
        _write_recording(current, means)
        assert (
            bench_compare.newest_other_recording(
                tmp_path, current, names=means, tag="kernel"
            )
            is None
        )

    def test_tagged_run_finds_same_tag_recording(
        self, tmp_path, bench_compare
    ):
        means = {"bench::one": 1.0}
        _write_recording(tmp_path / "BENCH_aaa.json", means)
        tagged = tmp_path / "BENCH_aaa_kernel.json"
        _write_recording(tagged, means)
        current = tmp_path / "BENCH_bbb_kernel.json"
        _write_recording(current, means)
        assert (
            bench_compare.newest_other_recording(
                tmp_path, current, names=means, tag="kernel"
            )
            == tagged
        )

    def test_other_family_never_becomes_baseline(
        self, tmp_path, bench_compare
    ):
        _write_recording(tmp_path / "BENCH_aaa.json", {"other::bench": 1.0})
        current = tmp_path / "BENCH_bbb.json"
        means = {"bench::one": 1.0}
        _write_recording(current, means)
        assert (
            bench_compare.newest_other_recording(
                tmp_path, current, names=means
            )
            is None
        )


class TestMissingBaseline:
    def test_missing_baseline_fails_loudly(
        self, tmp_path, bench_compare, fake_runner, capsys
    ):
        fake_runner({"bench::one": 1.0})
        code = bench_compare.main(
            ["--out-dir", str(tmp_path), "--tag", "fresh"]
        )
        assert code == 2
        assert "allow-missing-baseline" in capsys.readouterr().err

    def test_allow_missing_baseline_seeds_first_recording(
        self, tmp_path, bench_compare, fake_runner
    ):
        fake_runner({"bench::one": 1.0})
        code = bench_compare.main(
            [
                "--out-dir",
                str(tmp_path),
                "--tag",
                "fresh",
                "--allow-missing-baseline",
            ]
        )
        assert code == 0
        assert list(tmp_path.glob("BENCH_*_fresh.json"))

    def test_explicit_missing_baseline_still_errors(
        self, tmp_path, bench_compare, fake_runner
    ):
        fake_runner({"bench::one": 1.0})
        code = bench_compare.main(
            [
                "--out-dir",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2

    def test_regression_detected_against_committed_baseline(
        self, tmp_path, bench_compare, fake_runner
    ):
        baseline = tmp_path / "BENCH_old_kernel.json"
        _write_recording(baseline, {"bench::one": 1.0})
        fake_runner({"bench::one": 1.5})
        code = bench_compare.main(
            [
                "--out-dir",
                str(tmp_path),
                "--tag",
                "kernel",
                "--baseline",
                str(baseline),
                "--threshold",
                "0.2",
            ]
        )
        assert code == 1

    def test_within_threshold_passes(
        self, tmp_path, bench_compare, fake_runner
    ):
        baseline = tmp_path / "BENCH_old_kernel.json"
        _write_recording(baseline, {"bench::one": 1.0})
        fake_runner({"bench::one": 1.1})
        code = bench_compare.main(
            [
                "--out-dir",
                str(tmp_path),
                "--tag",
                "kernel",
                "--baseline",
                str(baseline),
                "--threshold",
                "0.2",
            ]
        )
        assert code == 0
