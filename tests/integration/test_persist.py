"""Tests for session persistence (repro.experiments.persist)."""

from __future__ import annotations

import json

import pytest

from repro.core.protocol import ProtocolConfig, run_session
from repro.errors import ConfigurationError
from repro.experiments.persist import (
    SCHEMA_VERSION,
    load_session_summary,
    save_session,
    series_from_saved,
    session_to_dict,
)
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream


@pytest.fixture(scope="module")
def session_result():
    stream = make_video_stream(GOP_12, gop_count=6)
    return run_session(stream, ProtocolConfig(p_bad=0.6, seed=13))


class TestSerialization:
    def test_dict_shape(self, session_result):
        data = session_to_dict(session_result)
        assert data["schema"] == SCHEMA_VERSION
        assert len(data["windows"]) == len(session_result.windows)
        assert data["summary"]["mean_clf"] == session_result.mean_clf
        assert data["config"]["p_bad"] == 0.6

    def test_json_round_trip(self, session_result, tmp_path):
        path = tmp_path / "session.json"
        save_session(session_result, path)
        data = load_session_summary(path)
        assert data["clf_series"] == list(session_result.series.clf_values)
        assert data["packets"]["offered"] == session_result.packets_offered

    def test_series_rebuild(self, session_result, tmp_path):
        path = tmp_path / "session.json"
        save_session(session_result, path)
        data = load_session_summary(path)
        series = series_from_saved(data, label="restored")
        assert series.clf_summary.mean == pytest.approx(session_result.mean_clf)

    def test_windows_fully_described(self, session_result):
        data = session_to_dict(session_result)
        window = data["windows"][0]
        assert sorted(window["transmission_order"]) == list(range(window["frames"]))
        assert set(window["decodable"]) <= set(window["received"])


class TestValidation:
    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ConfigurationError):
            load_session_summary(path)

    def test_series_window_mismatch(self, session_result, tmp_path):
        data = session_to_dict(session_result)
        data["clf_series"] = data["clf_series"][:-1]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_session_summary(path)

    def test_clf_mismatch(self, session_result, tmp_path):
        data = session_to_dict(session_result)
        data["clf_series"][0] = data["clf_series"][0] + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_session_summary(path)
