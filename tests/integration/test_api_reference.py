"""API.md must stay in sync with the public surface."""

from __future__ import annotations

import importlib
import importlib.util
import pathlib


def test_api_md_is_current():
    repo = pathlib.Path(__file__).resolve().parents[2]
    generator_path = repo / "tools" / "generate_api.py"
    spec = importlib.util.spec_from_file_location("generate_api", generator_path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    expected = module.render()
    actual = (repo / "API.md").read_text()
    assert actual == expected, (
        "API.md is stale; run `python tools/generate_api.py`"
    )


def test_every_export_resolves():

    for package in (
        "repro.core",
        "repro.poset",
        "repro.media",
        "repro.traces",
        "repro.network",
        "repro.metrics",
        "repro.protocols",
        "repro.cmt",
        "repro.experiments",
    ):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{package}.{name}"

