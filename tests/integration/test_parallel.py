"""Parallel experiment fan-out: worker pools must not change results."""

from __future__ import annotations

import io

from repro.experiments.config import FIGURE8_TOP
from repro.experiments.figure8 import run_figure8_multi
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import normalize_name, run_experiment


def _square(value: int) -> int:
    return value * value


def _boom(value: int) -> int:
    raise ValueError(f"bad item {value}")


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_preserves_item_order(self):
        assert parallel_map(_square, range(20), jobs=4) == [
            n * n for n in range(20)
        ]

    def test_single_item_stays_in_process(self):
        assert parallel_map(_square, [7], jobs=8) == [49]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_worker_errors_propagate(self):
        import pytest

        with pytest.raises(ValueError):
            parallel_map(_boom, [1, 2], jobs=2)


class TestParallelExperiments:
    def test_figure8_multi_jobs_identical(self):
        sequential = run_figure8_multi(FIGURE8_TOP, seeds=2, jobs=1)
        parallel = run_figure8_multi(FIGURE8_TOP, seeds=2, jobs=2)
        assert parallel.render() == sequential.render()
        assert parallel.runs == sequential.runs

    def test_run_experiment_jobs_identical(self):
        sequential = run_experiment("figure8-pooled", jobs=1)
        parallel = run_experiment("figure8-pooled", jobs=4)
        assert parallel == sequential

    def test_normalize_name(self):
        assert normalize_name("figure8_pooled") == "figure8-pooled"
        assert normalize_name("figure8-pooled") == "figure8-pooled"
        assert normalize_name("table1") == "table1"
        # Unknown names pass through untouched for the error message.
        assert normalize_name("no_such_thing") == "no_such_thing"


class TestCliJobs:
    def test_run_alias_with_underscore_name_and_jobs(self):
        from repro.cli import main

        parallel, sequential = io.StringIO(), io.StringIO()
        assert main(["run", "figure8_pooled", "--jobs", "4"], out=parallel) == 0
        assert main(["experiments", "figure8-pooled"], out=sequential) == 0
        text = parallel.getvalue()
        assert text == sequential.getvalue()
        assert "=== figure8-pooled ===" in text
        assert "pooled over 5 seeds" in text
