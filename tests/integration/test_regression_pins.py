"""Regression pins: exact seeded outputs of key pipelines.

These tests freeze the numeric behaviour of the main deterministic
pipelines (seeded channels, seeded traces, seeded permutation search).
A failure here means behaviour changed — which may be fine, but must be
a conscious decision: re-pin after verifying EXPERIMENTS.md still holds.
"""

from __future__ import annotations

import pytest

from repro.core.cpo import calculate_permutation
from repro.core.evaluation import worst_case_clf
from repro.network.markov import GilbertModel
from repro.traces.synthetic import calibrated_stream


class TestPermutationPins:
    def test_table1_permutation(self):
        perm = calculate_permutation(17, 5)
        # the parity split is chosen for b <= n/2
        assert perm.order == (
            0, 2, 4, 6, 8, 10, 12, 14, 16, 1, 3, 5, 7, 9, 11, 13, 15
        )

    def test_protocol_window_permutation(self):
        perm = calculate_permutation(16, 9)
        assert worst_case_clf(perm, 9) == 2
        assert sorted(perm.order) == list(range(16))

    def test_large_burst_permutation_certificate(self):
        perm = calculate_permutation(24, 20)
        assert worst_case_clf(perm, 20) == 5


class TestChannelPins:
    def test_gilbert_prefix(self):
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=42)
        assert model.losses(20) == [False] * 20
        follow_up = model.losses(60)
        assert sum(follow_up) == 10
        assert follow_up.index(True) == 4


class TestTracePins:
    def test_calibrated_stream_head(self):
        stream = calibrated_stream("jurassic_park_corrected", gop_count=4, seed=7)
        sizes = [ldu.size_bits for ldu in stream][:6]
        assert sizes == [104741, 23678, 21421, 26697, 9399, 13460]
        assert stream.max_gop_bits() == 627760


class TestSessionPins:
    def test_figure8_top_panel_numbers(self):
        """The exact single-run numbers recorded in EXPERIMENTS.md."""
        from repro.experiments.config import FIGURE8_TOP
        from repro.experiments.figure8 import run_figure8

        result = run_figure8(FIGURE8_TOP)
        assert result.scrambled.mean_clf == pytest.approx(1.22, abs=0.005)
        assert result.unscrambled.mean_clf == pytest.approx(1.78, abs=0.005)
