"""Integration: the experiment harness reproduces the paper's shapes.

These run the real experiment code at reduced scale (fewer windows) so
the full suite stays fast; the benchmarks run the full-size versions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.config import FIGURE8_TOP
from repro.experiments.figure8 import run_figure8, run_figure8_multi
from repro.experiments.figure11 import run_figure11
from repro.experiments.figure12 import run_figure12
from repro.experiments.layering import run_layering
from repro.experiments.orthogonal import run_orthogonal
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.theorem1 import run_theorem1


class TestTables:
    def test_table1_shape(self):
        result = run_table1()
        assert result.shape_holds
        assert result.transmission_order_1based() == [
            1, 6, 11, 16, 4, 9, 14, 2, 7, 12, 17, 5, 10, 15, 3, 8, 13
        ]
        # every burst position keeps CLF at 1
        assert all(clf == 1 for _, clf in result.per_position)

    def test_table2_shape(self):
        result = run_table2()
        assert result.shape_holds
        assert "IBO" in result.render()


class TestTheorem1:
    def test_small_grid_certified(self):
        result = run_theorem1(small_n=(4, 6, 8, 10), large_n=(17, 24))
        assert result.all_small_optimal
        assert result.max_gap <= 1


class TestFigures:
    def test_figure8_single_run(self):
        config = replace(FIGURE8_TOP, windows=40)
        result = run_figure8(config)
        # Mean improvement is robust per run; deviation needs pooling.
        assert result.scrambled.mean_clf < result.unscrambled.mean_clf
        assert len(result.scrambled.windows) == 40

    def test_figure8_pooled_shape(self):
        config = replace(FIGURE8_TOP, windows=40)
        aggregate = run_figure8_multi(config, seeds=4)
        assert aggregate.shape_holds

    def test_figure11_reduced(self):
        result = run_figure11(bandwidths=(600_000.0, 1_200_000.0), windows=40)
        assert result.shape_holds
        assert len(result.points) == 2

    def test_figure12_reduced(self):
        result = run_figure12(buffer_gops=(2, 4), windows=40)
        assert len(result.points) == 2
        for point in result.points:
            assert point.scrambled_mean <= point.unscrambled_mean

    def test_orthogonal_reduced(self):
        result = run_orthogonal(windows=80)
        assert result.shape_holds

    def test_layering_reduced(self):
        result = run_layering(windows=40)
        assert result.shape_holds
        rows = {name: mean for name, mean, _, _ in result.rows()}
        # layering alone cannot beat retransmission; the full scheme wins.
        assert rows["full scheme"] <= rows["retransmit only"]
