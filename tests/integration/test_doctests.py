"""Run the usage examples embedded in docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.cpo
import repro.core.evaluation
import repro.core.permutation
import repro.core.spreading
import repro.media.gop
import repro.media.ldu
import repro.metrics.continuity
import repro.poset.builders
import repro.protocols.cyclic_udp
import repro.protocols.ibo
import repro.protocols.priority
import repro.traces.catalog
import repro.traces.synthetic

MODULES = [
    repro.core.cpo,
    repro.core.evaluation,
    repro.core.permutation,
    repro.core.spreading,
    repro.media.gop,
    repro.media.ldu,
    repro.metrics.continuity,
    repro.poset.builders,
    repro.protocols.cyclic_udp,
    repro.protocols.ibo,
    repro.protocols.priority,
    repro.traces.catalog,
    repro.traces.synthetic,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest(s) failed in {module.__name__}"
    # every listed module should actually contain at least one example
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
