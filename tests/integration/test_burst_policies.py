"""Integration: Equation-1 versus quantile burst policies in sessions."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.protocol import ProtocolConfig, ProtocolSession, run_session
from repro.errors import ConfigurationError
from repro.traces.synthetic import calibrated_stream


@pytest.fixture(scope="module")
def stream():
    return calibrated_stream("jurassic_park_corrected", gop_count=60, seed=7)


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(burst_policy="vibes")

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(quantile_epsilon=0.0)


class TestQuantilePolicy:
    def test_session_runs(self, stream):
        config = ProtocolConfig(burst_policy="quantile", p_bad=0.6, seed=4)
        result = run_session(stream, config, max_windows=20)
        assert len(result.windows) == 20

    def test_estimator_learns_from_acks(self, stream):
        config = ProtocolConfig(
            burst_policy="quantile", p_bad=0.6, seed=4, lossy_feedback=False
        )
        session = ProtocolSession(stream, config)
        session.run(max_windows=25)
        estimator = session.channel_estimator
        assert estimator.windows_observed > 15
        # The fitted p_bad should resemble the configured channel.
        assert 0.3 < estimator.p_bad < 0.8

    def test_ack_carries_statistics(self, stream):
        config = ProtocolConfig(p_bad=0.6, seed=4)
        result = run_session(stream, config, max_windows=5)
        for window in result.windows:
            lost, runs, total = window.first_attempt_stats
            assert 0 <= runs <= lost <= total
            assert total == window.sent

    def test_policies_comparable_quality(self, stream):
        base = ProtocolConfig(p_bad=0.6, seed=9)
        eq1 = run_session(stream, base, max_windows=25)
        quant = run_session(
            stream, replace(base, burst_policy="quantile"), max_windows=25
        )
        # Both adaptive policies keep CLF in the same healthy band.
        assert abs(eq1.mean_clf - quant.mean_clf) < 1.0

    def test_quantile_designs_tighter_bounds_on_mild_channels(self, stream):
        """On a mild channel the quantile policy converges to a small
        bound, while Equation 1 (seeded at half-window) stays higher for
        the B layer early on."""
        config = ProtocolConfig(
            burst_policy="quantile",
            p_good=0.99,
            p_bad=0.3,
            seed=2,
            lossy_feedback=False,
        )
        session = ProtocolSession(stream, config)
        session.run(max_windows=30)
        bound = session.channel_estimator.burst_quantile(config.quantile_epsilon)
        assert bound <= 4
