"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.runner import available_experiments, run_experiment


class TestRunner:
    def test_available_names(self):
        names = available_experiments()
        assert "table1" in names and "figure8" in names and "gateways" in names

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            run_experiment("figure99")

    def test_table1_runs(self):
        rendered, shape = run_experiment("table1")
        assert "Table 1" in rendered
        assert shape is True


class TestCli:
    def test_list_experiments(self):
        out = io.StringIO()
        assert main(["experiments", "--list"], out=out) == 0
        assert "table2" in out.getvalue()

    def test_run_single_experiment(self):
        out = io.StringIO()
        assert main(["experiments", "table1"], out=out) == 0
        text = out.getvalue()
        assert "=== table1 ===" in text
        assert "[shape HOLDS]" in text

    def test_permute(self):
        out = io.StringIO()
        assert main(["permute", "17", "5"], out=out) == 0
        text = out.getvalue()
        assert "certified worst-case CLF" in text
        assert "CLF for bursts <= 5: 1" in text

    def test_bounds(self):
        out = io.StringIO()
        assert main(["bounds", "10"], out=out) == 0
        assert "Theorem 1 bracket" in out.getvalue()

    def test_trace_stdout(self):
        out = io.StringIO()
        assert main(["trace", "star_wars", "--gops", "3"], out=out) == 0
        assert "I " in out.getvalue()

    def test_trace_file_roundtrip(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "sw.trace"
        code = main(
            ["trace", "star_wars", "--gops", "4", "--out", str(path)], out=out
        )
        assert code == 0
        from repro.traces.io import read_trace

        stream = read_trace(path)
        assert len(stream) == 48

    def test_unknown_trace_movie(self):
        out = io.StringIO()
        with pytest.raises(Exception):
            main(["trace", "casablanca"], out=out)

    def test_replay_round_trip(self, tmp_path):
        from repro.core.protocol import ProtocolConfig, run_session
        from repro.experiments.persist import save_session
        from repro.media.gop import GOP_12
        from repro.media.stream import make_video_stream

        stream = make_video_stream(GOP_12, gop_count=4)
        result = run_session(stream, ProtocolConfig(p_bad=0.6, seed=3))
        path = tmp_path / "session.json"
        save_session(result, path)

        out = io.StringIO()
        assert main(["replay", str(path), "--loss-map"], out=out) == 0
        text = out.getvalue()
        assert "mean CLF" in text
        assert "CLF per window" in text
        assert "playout" in text

    def test_replay_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 42}')
        out = io.StringIO()
        with pytest.raises(Exception):
            main(["replay", str(path)], out=out)

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "permute", "8", "4"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "certified" in completed.stdout


class TestServeCli:
    def test_serve_shards_auto(self, monkeypatch):
        import repro.serve.fastpath as fastpath

        # Pin the heuristic so the assertion does not depend on the host.
        monkeypatch.setattr(fastpath.os, "process_cpu_count", lambda: 2, raising=False)
        out = io.StringIO()
        assert main(
            ["serve", "--sessions", "6", "--shards", "auto", "--fast"], out=out
        ) == 0
        # Two shards of three sessions each, shard-prefixed labels.
        text = out.getvalue()
        assert "0:s00" in text and "1:s00" in text

    def test_serve_shards_rejects_garbage(self):
        out = io.StringIO()
        assert main(["serve", "--shards", "many"], out=out) == 2
        assert "integer or 'auto'" in out.getvalue()
        out = io.StringIO()
        assert main(["serve", "--shards", "0"], out=out) == 2

    def test_serve_plan_smoke_writes_reproducible_manifest(self, tmp_path):
        import json

        from repro.obs.manifest import validate_manifest

        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            out = io.StringIO()
            assert main(
                ["serve", "plan", "--smoke", "--seed", "7", "--out", str(path)],
                out=out,
            ) == 0
            assert "capacity plan" in out.getvalue()
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert validate_manifest(a) == []
        assert a["experiment"] == "capacity-plan"
        assert a["seed"] == 7
        assert a["summary"] == b["summary"]
        assert a["config"] == b["config"]

    def test_capacity_plan_experiment_registered(self):
        from repro.experiments.runner import available_experiments

        assert "capacity-plan" in available_experiments()
