"""Integration: rate/drift metrics applied to protocol sessions."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.metrics.rates import measure_drift, measure_rate


@pytest.fixture(scope="module")
def stream():
    return make_video_stream(GOP_12, gop_count=8)


class TestArrivalTimelines:
    def test_lossless_everything_arrives_early(self, stream):
        config = ProtocolConfig(
            p_good=1.0, p_bad=0.0, lossy_feedback=False,
            bandwidth_bps=20_000_000.0,
        )
        result = run_session(stream, config)
        for window in result.windows:
            timeline = window.arrival_timeline(stream.fps)
            drifts = timeline.drifts_in_slots()
            assert all(d is not None for d in drifts)
            # data arrives before playback: drift is never positive
            assert all(d <= 0 for d in drifts if d is not None)

    def test_drift_report_counts_losses(self, stream):
        config = ProtocolConfig(p_bad=0.7, seed=3)
        result = run_session(stream, config)
        lossy_windows = [w for w in result.windows if w.unit_losses]
        assert lossy_windows
        for window in lossy_windows:
            timeline = window.arrival_timeline(stream.fps)
            # tolerance is irrelevant for missing frames: they always drift
            report = measure_drift(timeline, tolerance_slots=10_000)
            assert report.drifting == window.unit_losses

    def test_arrival_rate_tracks_transmission(self, stream):
        """With a generous window, arrivals pace at the channel rate, so
        the arrival-rate factor exceeds 1 (frames arrive faster than
        playback consumes them)."""
        config = ProtocolConfig(
            p_good=1.0, p_bad=0.0, lossy_feedback=False,
            bandwidth_bps=20_000_000.0,
        )
        result = run_session(stream, config)
        timeline = result.windows[0].arrival_timeline(stream.fps)
        report = measure_rate(timeline, window=6)
        assert report.max_rate_factor > 1.0

    def test_timeline_lengths(self, stream):
        config = ProtocolConfig(seed=1)
        result = run_session(stream, config)
        for window in result.windows:
            assert len(window.arrival_timeline(stream.fps)) == window.frames
