"""Integration: cross-module invariants of full streaming sessions."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.protocol import ProtocolConfig, run_session
from repro.metrics.continuity import consecutive_loss
from repro.metrics.perception import VIDEO_PROFILE
from repro.protocols.concealment import conceal, report


@pytest.fixture(scope="module")
def session_result(jurassic_stream):
    config = ProtocolConfig(p_bad=0.6, seed=33)
    return run_session(jurassic_stream, config)


class TestSessionInvariants:
    def test_window_clf_consistent_with_decodable(self, session_result):
        for window in session_result.windows:
            indicator = [
                0 if offset in window.decodable else 1
                for offset in range(window.frames)
            ]
            assert window.clf == consecutive_loss(indicator)
            assert window.unit_losses == sum(indicator)

    def test_series_matches_windows(self, session_result):
        assert session_result.series.clf_values == [
            w.clf for w in session_result.windows
        ]

    def test_overall_report_aggregates(self, session_result):
        overall = session_result.overall_report
        assert overall.slots == sum(w.frames for w in session_result.windows)
        # stream CLF counts window-straddling runs, so it can exceed —
        # but never undercut — the worst per-window CLF.
        assert overall.clf >= max(w.clf for w in session_result.windows)
        assert session_result.stream_clf == overall.clf

    def test_stream_clf_straddling_construction(self, jurassic_stream):
        """A blackout spanning a window boundary shows up as one run."""
        from repro.core.protocol import ProtocolConfig, run_session

        config = ProtocolConfig(p_good=0.0, p_bad=1.0, seed=1)
        result = run_session(jurassic_stream, config, max_windows=3)
        assert result.stream_clf == sum(w.frames for w in result.windows)
        assert max(w.clf for w in result.windows) == result.windows[0].frames

    def test_packet_accounting(self, session_result):
        assert 0 < session_result.packets_lost < session_result.packets_offered

    def test_perceptual_assessment_runs(self, session_result):
        acceptable = sum(
            1
            for w in session_result.windows
            if VIDEO_PROFILE.acceptable_clf(w.clf)
        )
        assert acceptable > len(session_result.windows) // 2


class TestConcealmentOnSessions:
    def test_concealment_improves_with_scrambling(self, jurassic_stream):
        base = ProtocolConfig(p_bad=0.7, seed=12, retransmit_anchors=False)
        scrambled = run_session(jurassic_stream, base)
        unscrambled = run_session(
            jurassic_stream, replace(base, layered=False, scramble=False)
        )

        def worst_freeze(result):
            worst = 0
            for window in result.windows:
                records = conceal(sorted(window.decodable), window.frames)
                worst = max(worst, report(records).max_freeze)
            return worst

        assert worst_freeze(scrambled) <= worst_freeze(unscrambled)


class TestClosedGops:
    def test_closed_gops_session_runs(self, jurassic_stream):
        config = ProtocolConfig(p_bad=0.6, seed=9, closed_gops=True)
        result = run_session(jurassic_stream, config, max_windows=8)
        assert len(result.windows) == 8

    def test_closed_gops_weakly_easier(self, jurassic_stream):
        """Closed GOPs remove cross-GOP edges; losing the previous GOP's
        last P then hurts fewer frames."""
        open_cfg = ProtocolConfig(p_bad=0.7, seed=2, closed_gops=False)
        closed_cfg = ProtocolConfig(p_bad=0.7, seed=2, closed_gops=True)
        open_result = run_session(jurassic_stream, open_cfg, max_windows=10)
        closed_result = run_session(jurassic_stream, closed_cfg, max_windows=10)
        open_losses = sum(w.unit_losses for w in open_result.windows)
        closed_losses = sum(w.unit_losses for w in closed_result.windows)
        assert closed_losses <= open_losses + 5
