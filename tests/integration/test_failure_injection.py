"""Failure injection: pathological inputs the engine must survive."""

from __future__ import annotations

from repro.core.protocol import ProtocolConfig, run_session
from repro.media.gop import GOP_12, GopPattern
from repro.media.ldu import FrameType, Ldu
from repro.media.stream import MediaStream, VideoStream, make_video_stream


class TestOversizedFrames:
    def test_frame_larger_than_cycle_budget(self):
        """A frame that can never serialize within a cycle is dropped at
        the sender every window — no hang, accounting stays closed."""
        # One-second windows at 100 kbps = 100 kbit budget; make the I
        # frame 1 Mbit.
        sizes = []
        for i in range(48):
            sizes.append(1_000_000 if i % 12 == 0 else 1_000)
        stream = make_video_stream(GOP_12, gop_count=4, sizes_bits=sizes)
        config = ProtocolConfig(
            bandwidth_bps=100_000.0,
            p_good=1.0,
            p_bad=0.0,
            lossy_feedback=False,
        )
        result = run_session(stream, config)
        for window in result.windows:
            assert window.sent + window.dropped_at_sender == window.frames
            assert window.dropped_at_sender >= 2  # both I frames
            # losing every I kills all decodability
            assert window.clf == window.frames

    def test_zero_size_frames(self):
        """Zero-bit frames still occupy a packet and flow through."""
        ldus = tuple(
            Ldu(index=i, frame_type=GOP_12.type_at(i), size_bits=0)
            for i in range(24)
        )
        stream = VideoStream(ldus=ldus, fps=24.0, pattern=GOP_12)
        config = ProtocolConfig(p_good=1.0, p_bad=0.0, lossy_feedback=False)
        result = run_session(stream, config)
        assert result.mean_clf == 0.0


class TestPathologicalChannels:
    def test_total_blackout(self):
        stream = make_video_stream(GOP_12, gop_count=4)
        config = ProtocolConfig(p_good=0.0, p_bad=1.0, seed=1)
        result = run_session(stream, config)
        for window in result.windows:
            assert window.clf == window.frames
            assert len(window.decodable) == 0

    def test_blackout_then_recovery_behaviour(self):
        """The estimator saturates during a blackout but the session
        keeps running and the permutation stays valid."""
        stream = make_video_stream(GOP_12, gop_count=8)
        config = ProtocolConfig(
            p_good=0.5, p_bad=0.95, seed=3, burst_policy="quantile"
        )
        result = run_session(stream, config)
        for window in result.windows:
            assert sorted(window.transmission_order) == list(range(window.frames))

    def test_rtt_longer_than_cycle(self):
        """Feedback arrives too late to ever be used; the protocol keeps
        its initial estimates and still works."""
        stream = make_video_stream(GOP_12, gop_count=6)
        config = ProtocolConfig(rtt=5.0, p_bad=0.5, seed=2)
        result = run_session(stream, config)
        assert len(result.windows) == 3
        # ACKs were sent but none could influence a later window in time
        assert result.acks_sent == 3

    def test_ack_channel_dead(self):
        stream = make_video_stream(GOP_12, gop_count=6)
        config = ProtocolConfig(p_bad=0.6, seed=2)
        from repro.core.protocol import ProtocolSession
        from repro.network.channel import SimulatedChannel
        from repro.network.markov import GilbertModel

        forward = SimulatedChannel(
            bandwidth_bps=config.bandwidth_bps,
            propagation_delay=config.rtt / 2,
            loss_model=GilbertModel(p_good=0.92, p_bad=0.6, seed=2),
        )
        dead_feedback = SimulatedChannel(
            bandwidth_bps=config.bandwidth_bps,
            propagation_delay=config.rtt / 2,
            loss_model=GilbertModel(p_good=0.0, p_bad=1.0),
        )
        session = ProtocolSession(stream, config, channels=(forward, dead_feedback))
        result = session.run()
        assert result.acks_lost == result.acks_sent
        assert result.acks_used == 0


class TestDegenerateStreams:
    def test_single_frame_windows(self):
        ldus = tuple(Ldu(index=i, frame_type=FrameType.X, size_bits=1000) for i in range(5))
        stream = MediaStream(ldus=ldus, fps=30.0)
        config = ProtocolConfig(
            gops_per_window=1, gop_size=1, p_bad=0.5, seed=1
        )
        result = run_session(stream, config)
        assert len(result.windows) == 5
        for window in result.windows:
            assert window.frames == 1
            assert window.clf in (0, 1)

    def test_partial_final_window(self):
        stream = make_video_stream(GopPattern.parse("IBB"), gop_count=3)  # 9 frames
        config = ProtocolConfig(
            gops_per_window=2, gop_size=3, p_good=1.0, p_bad=0.0,
            lossy_feedback=False, bandwidth_bps=20_000_000.0,
        )
        result = run_session(stream, config)
        assert [w.frames for w in result.windows] == [6, 3]
        assert result.mean_clf == 0.0

    def test_i_only_stream(self):
        stream = make_video_stream(GopPattern.parse("I"), gop_count=20)
        config = ProtocolConfig(
            gops_per_window=10, gop_size=1, p_bad=0.6, seed=4
        )
        result = run_session(stream, config)
        # no frame depends on any other: losses never amplify
        for window in result.windows:
            assert window.unit_losses == window.frames - len(window.received)
