"""Integration: GOP-15 / 30 fps streams (the trace set's other format)."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig, compare_schemes, run_session
from repro.media.gop import GOP_15
from repro.traces.catalog import TraceSpec
from repro.traces.synthetic import calibrated_stream_for_spec


@pytest.fixture(scope="module")
def gop15_stream():
    spec = TraceSpec("star_wars_gop15", max_gop_bits=932710, gop_size=15, fps=30.0)
    return calibrated_stream_for_spec(spec, gop_count=40, seed=7)


class TestGop15Streams:
    def test_pattern_synthesized_correctly(self, gop15_stream):
        assert gop15_stream.fps == 30.0
        assert gop15_stream.gop_size == 15
        assert str(gop15_stream.pattern) == str(GOP_15)
        assert gop15_stream.max_gop_bits() == 932710

    def test_session_runs(self, gop15_stream):
        config = ProtocolConfig(
            gops_per_window=2, gop_size=15, p_bad=0.6, seed=3
        )
        result = run_session(gop15_stream, config)
        assert len(result.windows) == 20
        for window in result.windows:
            assert window.frames == 30
            # GOP-15 layering: I, P1..P4, B => 6 layers
            assert len(window.layer_sizes) == 6

    def test_spreading_wins_at_gop15(self, gop15_stream):
        config = ProtocolConfig(
            gops_per_window=2, gop_size=15, p_bad=0.6, seed=9
        )
        scrambled, unscrambled = compare_schemes(gop15_stream, config)
        assert scrambled.mean_clf < unscrambled.mean_clf
