"""Tests for the Poset type (repro.poset.poset)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError, PosetError
from repro.poset.poset import Poset, antichain, chain


@st.composite
def random_dags(draw):
    """A random DAG as (n, edges) with edges (i, j), i < j (acyclic)."""
    n = draw(st.integers(min_value=1, max_value=10))
    pair_pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(pair_pool), max_size=20)) if pair_pool else []
    return n, edges


class TestConstruction:
    def test_duplicate_elements_rejected(self):
        with pytest.raises(PosetError):
            Poset([1, 1, 2])

    def test_unknown_element_in_relation(self):
        with pytest.raises(PosetError):
            Poset([1, 2], [(1, 3)])

    def test_cycle_detected(self):
        with pytest.raises(CycleError):
            Poset([1, 2, 3], [(1, 2), (2, 3), (3, 1)])

    def test_two_cycle_detected(self):
        with pytest.raises(CycleError):
            Poset([1, 2], [(1, 2), (2, 1)])

    def test_reflexive_pairs_ignored(self):
        poset = Poset([1, 2], [(1, 1), (1, 2)])
        assert poset.le(1, 2)

    def test_membership(self):
        poset = Poset([1, 2])
        assert 1 in poset and 3 not in poset
        assert len(poset) == 2
        assert list(poset) == [1, 2]


class TestOrderAxioms:
    @given(random_dags())
    @settings(max_examples=60)
    def test_reflexive_antisymmetric_transitive(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        for x in range(n):
            assert poset.le(x, x)
        for x in range(n):
            for y in range(n):
                if x != y and poset.le(x, y):
                    assert not poset.le(y, x)
                for z in range(n):
                    if poset.le(x, y) and poset.le(y, z):
                        assert poset.le(x, z)

    @given(random_dags())
    @settings(max_examples=40)
    def test_above_below_are_duals(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        for x in range(n):
            for y in poset.above(x):
                assert x in poset.below(y)


class TestQueries:
    @pytest.fixture
    def diamond(self) -> Poset[str]:
        # a <= b, a <= c, b <= d, c <= d
        return Poset("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])

    def test_comparable(self, diamond):
        assert diamond.comparable("a", "d")
        assert not diamond.comparable("b", "c")

    def test_covers(self, diamond):
        assert diamond.covers("a", "b")
        assert not diamond.covers("a", "d")  # b is in between

    def test_cover_pairs(self, diamond):
        assert set(diamond.cover_pairs()) == {
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")
        }

    def test_minimal_maximal(self, diamond):
        assert diamond.minimal_elements() == ["a"]
        assert diamond.maximal_elements() == ["d"]

    def test_anchors(self, diamond):
        # anchors = elements something depends on = above someone
        assert set(diamond.anchors()) == {"b", "c", "d"}

    def test_chains_and_antichains(self, diamond):
        assert diamond.is_chain(["a", "b", "d"])
        assert not diamond.is_chain(["b", "c"])
        assert diamond.is_antichain(["b", "c"])
        assert not diamond.is_antichain(["a", "b"])

    def test_longest_chain(self, diamond):
        assert diamond.longest_chain_length() == 3

    def test_ranks(self, diamond):
        ranks = diamond.ranks()
        assert ranks == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_is_ranked(self, diamond):
        assert diamond.is_ranked()

    def test_unranked_example(self):
        # a < b < d and a < d' direct: covers(a, c) with rank gap 2
        poset = Poset("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        # chain a<b<c: c covers b; does c cover a? a<b<c means no.
        assert poset.is_ranked()
        fork = Poset("abcd", [("a", "b"), ("b", "d"), ("a", "d"), ("a", "c"), ("c", "d")])
        assert fork.is_ranked()

    def test_dual_reverses(self, diamond):
        dual = diamond.dual()
        assert dual.le("d", "a")
        assert dual.minimal_elements() == ["d"]

    def test_restrict(self, diamond):
        sub = diamond.restrict(["a", "b", "d"])
        assert sub.le("a", "d")
        assert len(sub) == 3

    def test_restrict_unknown(self, diamond):
        with pytest.raises(PosetError):
            diamond.restrict(["z"])

    def test_unknown_element_query(self, diamond):
        with pytest.raises(PosetError):
            diamond.le("a", "z")


class TestFactories:
    def test_chain_structure(self):
        c = chain(4)
        assert c.longest_chain_length() == 4
        assert c.le(0, 3)
        assert c.is_chain(range(4))

    def test_antichain_structure(self):
        a = antichain(4)
        assert a.longest_chain_length() == 1
        assert a.is_antichain(range(4))

    def test_empty(self):
        assert len(chain(0)) == 0
        assert chain(0).longest_chain_length() == 0

    def test_negative_rejected(self):
        with pytest.raises(PosetError):
            chain(-1)
        with pytest.raises(PosetError):
            antichain(-1)

    @given(st.integers(min_value=1, max_value=12))
    def test_mirsky_on_chain(self, n):
        from repro.poset.antichain import rank_decomposition

        layers = rank_decomposition(chain(n))
        assert len(layers) == n
        assert all(len(layer) == 1 for layer in layers)
