"""Tests for encoding-specific poset builders (repro.poset.builders)."""

from __future__ import annotations

import pytest

from repro.errors import GopPatternError, PosetError
from repro.media.gop import GOP_12, GopPattern
from repro.media.ldu import FrameType
from repro.poset.builders import (
    h261_poset,
    independent_poset,
    ldu_poset,
    mpeg_dependencies,
    mpeg_poset,
    mpeg_poset_for_pattern,
)

I, P, B = FrameType.I, FrameType.P, FrameType.B


class TestMpegDependencies:
    def test_p_depends_on_previous_anchor(self):
        deps = set(mpeg_dependencies([I, B, B, P, B, B]))
        assert (3, 0) in deps  # P3 -> I0

    def test_p_chain(self):
        types = GOP_12.frame_types
        deps = set(mpeg_dependencies(types))
        assert (3, 0) in deps
        assert (6, 3) in deps
        assert (9, 6) in deps

    def test_b_depends_both_sides(self):
        deps = set(mpeg_dependencies([I, B, B, P]))
        assert (1, 0) in deps and (1, 3) in deps
        assert (2, 0) in deps and (2, 3) in deps

    def test_open_gop_cross_dependency(self):
        # Two GOPs of IBBP: the trailing... B frames before the next I
        types = [I, B, B, P, B, B, I, B, B, P, B, B]
        deps = set(mpeg_dependencies(types))
        # B4, B5 sit between P3 and I6: open GOP keeps the (4, 3) edge.
        assert (4, 3) in deps and (4, 6) in deps

    def test_closed_gop_drops_cross_dependency(self):
        types = [I, B, B, P, B, B, I, B, B, P, B, B]
        deps = set(mpeg_dependencies(types, closed_gops=True))
        assert (4, 3) not in deps  # backward ref across the I6 boundary
        assert (4, 6) in deps      # forward ref to I6 stays

    def test_orphan_p_rejected(self):
        with pytest.raises(GopPatternError):
            mpeg_dependencies([B, P])

    def test_trailing_b_keeps_backward_only(self):
        types = [I, P, B]
        deps = set(mpeg_dependencies(types))
        assert (2, 1) in deps
        assert all(dep[0] != 2 or dep[1] in (1,) for dep in deps)

    def test_x_frames_ignored(self):
        deps = mpeg_dependencies([FrameType.X, FrameType.X])
        assert deps == []


class TestPosets:
    def test_doctest_case(self):
        types = GopPattern.parse("IBBPBB").frame_types * 2
        poset = mpeg_poset(types)
        assert sorted(poset.above(1)) == [0, 3]

    def test_longest_chain_matches_layering(self):
        poset = mpeg_poset_for_pattern(GOP_12, 2)
        assert poset.longest_chain_length() == 5  # B < P3 < P2 < P1 < I

    def test_anchors_are_i_and_p(self):
        poset = mpeg_poset_for_pattern(GOP_12, 1)
        anchors = set(poset.anchors())
        assert anchors == {0, 3, 6, 9}

    def test_gop_count_zero(self):
        assert len(mpeg_poset_for_pattern(GOP_12, 0)) == 0

    def test_gop_count_negative(self):
        with pytest.raises(PosetError):
            mpeg_poset_for_pattern(GOP_12, -1)

    def test_ldu_poset(self, small_mpeg_stream):
        window = small_mpeg_stream.window(0, 24)
        poset = ldu_poset(window)
        assert len(poset) == 24
        assert poset.le(1, 0)  # B1 depends on I0


class TestH261:
    def test_chain_between_intras(self):
        poset = h261_poset(6, intra_interval=3)
        # frames 0,3 are intra; 1 depends on 0; 2 on 1; 4 on 3; 5 on 4
        assert poset.le(2, 0)
        assert not poset.comparable(2, 3)
        assert poset.le(5, 3)

    def test_default_interval(self):
        poset = h261_poset(10)
        assert poset.longest_chain_length() == 10

    def test_invalid(self):
        with pytest.raises(PosetError):
            h261_poset(-1)
        with pytest.raises(PosetError):
            h261_poset(5, intra_interval=0)


class TestIndependent:
    def test_no_relations(self):
        poset = independent_poset(5)
        assert poset.longest_chain_length() == 1
        assert poset.anchors() == []

    def test_negative(self):
        with pytest.raises(PosetError):
            independent_poset(-1)
