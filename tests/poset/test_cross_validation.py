"""Cross-validation of the poset substrate against networkx.

Independent implementations of transitive closure, longest path and
topological orderings catch systematic bugs the in-module tests share.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poset.antichain import rank_decomposition
from repro.poset.linear_extension import count_linear_extensions, linear_extension
from repro.poset.poset import Poset


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), max_size=25)) if pool else []
    return n, sorted(set(edges))


def as_networkx(n, edges) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


class TestAgainstNetworkx:
    @given(random_dags())
    @settings(max_examples=80, deadline=None)
    def test_transitive_closure(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        closure = nx.transitive_closure(as_networkx(n, edges))
        for x in range(n):
            for y in range(n):
                if x == y:
                    continue
                assert poset.lt(x, y) == closure.has_edge(x, y)

    @given(random_dags())
    @settings(max_examples=80, deadline=None)
    def test_longest_chain(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        graph = as_networkx(n, edges)
        expected = nx.dag_longest_path_length(graph) + 1
        assert poset.longest_chain_length() == expected

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_mirsky_layer_count(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        layers = rank_decomposition(poset)
        graph = as_networkx(n, edges)
        assert len(layers) == nx.dag_longest_path_length(graph) + 1

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_linear_extension_is_topological(self, dag):
        n, edges = dag
        poset = Poset(range(n), edges)
        # Our relation (x, y) means "x depends on y" -> y precedes x.
        order = linear_extension(poset)
        position = {node: i for i, node in enumerate(order)}
        for x, y in edges:
            assert position[y] < position[x]

    @given(random_dags())
    @settings(max_examples=25, deadline=None)
    def test_extension_count_matches_enumeration(self, dag):
        n, edges = dag
        if n > 7:
            return  # enumeration too large
        poset = Poset(range(n), edges)
        graph = as_networkx(n, [(y, x) for x, y in edges])  # precedence edges
        expected = sum(1 for _ in nx.all_topological_sorts(graph))
        assert count_linear_extensions(poset) == expected
