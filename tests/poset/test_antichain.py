"""Tests for antichain decompositions (repro.poset.antichain)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PosetError
from repro.media.gop import GOP_12
from repro.poset.antichain import (
    critical_layers,
    is_minimum_decomposition,
    rank_decomposition,
    transmission_layers,
    verify_decomposition,
)
from repro.poset.builders import mpeg_poset_for_pattern
from repro.poset.poset import Poset, antichain, chain


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), max_size=15)) if pool else []
    return Poset(range(n), edges)


class TestRankDecomposition:
    @given(random_dags())
    @settings(max_examples=60)
    def test_mirsky_minimality(self, poset):
        layers = rank_decomposition(poset)
        assert len(layers) == poset.longest_chain_length()
        assert is_minimum_decomposition(poset, layers)

    @given(random_dags())
    @settings(max_examples=60)
    def test_layers_are_antichains_partitioning(self, poset):
        layers = rank_decomposition(poset)
        seen = [e for layer in layers for e in layer]
        assert sorted(seen) == sorted(poset.elements)
        for layer in layers:
            assert poset.is_antichain(layer)

    def test_empty_poset(self):
        assert rank_decomposition(Poset([])) == []


class TestTransmissionLayers:
    @given(random_dags())
    @settings(max_examples=60)
    def test_valid_decomposition(self, poset):
        verify_decomposition(poset, transmission_layers(poset))

    def test_mpeg_figure3(self):
        poset = mpeg_poset_for_pattern(GOP_12, 3)
        layers = transmission_layers(poset)
        assert len(layers) == 5
        assert layers[0] == [0, 12, 24]  # the I frames
        assert layers[1] == [3, 15, 27]
        # every B frame in the final layer
        b_layer = set(layers[-1])
        assert all(i % 12 not in (0, 3, 6, 9) for i in b_layer)

    def test_chain_gives_singletons_reversed(self):
        layers = transmission_layers(chain(3))
        # 0 < 1 < 2 (0 depends on 1 depends on 2): send 2 first.
        assert layers == [[2], [1], [0]]

    def test_antichain_single_layer(self):
        layers = transmission_layers(antichain(5))
        assert layers == [[0, 1, 2, 3, 4]]


class TestVerify:
    def test_detects_duplicate(self):
        poset = antichain(3)
        with pytest.raises(PosetError):
            verify_decomposition(poset, [[0, 1], [1, 2]])

    def test_detects_missing(self):
        poset = antichain(3)
        with pytest.raises(PosetError):
            verify_decomposition(poset, [[0, 1]])

    def test_detects_non_antichain(self):
        poset = chain(3)
        with pytest.raises(PosetError):
            verify_decomposition(poset, [[0, 1], [2]])

    def test_detects_priority_violation(self):
        poset = chain(2)  # 0 depends on 1
        with pytest.raises(PosetError):
            verify_decomposition(poset, [[0], [1]])  # dependency sent later

    def test_accepts_valid(self):
        poset = chain(2)
        verify_decomposition(poset, [[1], [0]])


class TestCriticalLayers:
    def test_mpeg_critical(self):
        poset = mpeg_poset_for_pattern(GOP_12, 2)
        layers = transmission_layers(poset)
        assert critical_layers(poset, layers) == [0, 1, 2, 3]

    def test_independent_no_critical(self):
        poset = antichain(6)
        layers = transmission_layers(poset)
        assert critical_layers(poset, layers) == []
