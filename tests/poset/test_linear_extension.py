"""Tests for linear extensions (repro.poset.linear_extension)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.gop import GOP_12
from repro.poset.builders import mpeg_poset_for_pattern
from repro.poset.linear_extension import (
    anchors_first_extension,
    count_linear_extensions,
    is_linear_extension,
    linear_extension,
)
from repro.poset.poset import Poset, antichain, chain


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), max_size=15)) if pool else []
    return Poset(range(n), edges)


class TestLinearExtension:
    @given(random_dags())
    @settings(max_examples=80)
    def test_always_valid(self, poset):
        assert is_linear_extension(poset, linear_extension(poset))

    @given(random_dags())
    @settings(max_examples=40)
    def test_anchors_first_valid(self, poset):
        assert is_linear_extension(poset, anchors_first_extension(poset))

    def test_deterministic(self):
        poset = mpeg_poset_for_pattern(GOP_12, 2)
        assert linear_extension(poset) == linear_extension(poset)

    def test_anchors_lead_for_mpeg(self):
        poset = mpeg_poset_for_pattern(GOP_12, 2)
        ext = anchors_first_extension(poset)
        anchor_count = len(poset.anchors())
        assert set(ext[:anchor_count]) == set(poset.anchors())

    def test_chain_unique_extension(self):
        # 0 depends on 1 depends on 2 -> must transmit 2, 1, 0
        assert linear_extension(chain(3)) == [2, 1, 0]

    def test_key_override(self):
        poset = antichain(4)
        ext = linear_extension(poset, key=lambda e: -e)
        assert ext == [3, 2, 1, 0]


class TestIsLinearExtension:
    def test_rejects_wrong_length(self):
        assert not is_linear_extension(antichain(3), [0, 1])

    def test_rejects_wrong_elements(self):
        assert not is_linear_extension(antichain(3), [0, 1, 5])

    def test_rejects_duplicates(self):
        assert not is_linear_extension(antichain(3), [0, 1, 1])

    def test_rejects_order_violation(self):
        assert not is_linear_extension(chain(2), [0, 1])
        assert is_linear_extension(chain(2), [1, 0])


class TestCounting:
    def test_chain_has_one(self):
        assert count_linear_extensions(chain(5)) == 1

    def test_antichain_has_factorial(self):
        for n in range(1, 6):
            assert count_linear_extensions(antichain(n)) == math.factorial(n)

    def test_v_poset(self):
        # two incomparable elements above a common dependency
        poset = Poset("abc", [("a", "c"), ("b", "c")])
        # c must come first; a and b in either order
        assert count_linear_extensions(poset) == 2

    def test_empty(self):
        assert count_linear_extensions(Poset([])) == 1

    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_count_positive_and_bounded(self, poset):
        count = count_linear_extensions(poset)
        assert 1 <= count <= math.factorial(len(poset))
