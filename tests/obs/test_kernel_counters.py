"""Kernel observability: dispatch, cohort collapse and batch width.

Satellite contract of the unified window-step kernel: every step
reports how many rows it carried (``kernel.steps`` / ``kernel.rows`` /
the ``kernel.rows_per_window`` histogram), which tier executed it
(``kernel.dispatch.<tier>``), and — under the fused tier — how the
cohort split between full collapse, shared-timeline collapse and the
scalar fallback (``kernel.collapse.*``).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import kernel
from repro.core.batch import run_sessions_batch
from repro.core.protocol import ProtocolConfig
from repro.media.gop import GopPattern
from repro.media.stream import make_video_stream

SEEDS = (1, 2, 3, 4)
MAX_WINDOWS = 3


@pytest.fixture
def stream():
    return make_video_stream(GopPattern.parse("IBBP"), gop_count=6)


@pytest.fixture
def tracked():
    registry = obs.enable()
    obs.reset()
    yield registry
    obs.disable()


@pytest.fixture(autouse=True)
def _restore_tier():
    previous = kernel.tier_name()
    yield
    kernel.set_tier(previous)


def _counters(registry, stream, config, tier):
    kernel.set_tier(tier)
    run_sessions_batch(
        stream, config, seeds=list(SEEDS), max_windows=MAX_WINDOWS
    )
    return registry.snapshot()


class TestKernelCounters:
    def test_steps_rows_and_dispatch_fused(self, tracked, stream):
        config = ProtocolConfig(gop_size=4, p_good=0.95, p_bad=0.5)
        snapshot = _counters(tracked, stream, config, kernel.FUSED)
        counters = snapshot["counters"]
        assert counters["kernel.steps"] == MAX_WINDOWS
        assert counters["kernel.rows"] == MAX_WINDOWS * len(SEEDS)
        assert counters["kernel.dispatch.fused"] == MAX_WINDOWS
        assert "kernel.dispatch.reference" not in counters

    def test_dispatch_reference(self, tracked, stream):
        config = ProtocolConfig(gop_size=4)
        snapshot = _counters(tracked, stream, config, kernel.REFERENCE)
        counters = snapshot["counters"]
        assert counters["kernel.dispatch.reference"] == MAX_WINDOWS
        assert "kernel.dispatch.fused" not in counters
        # The cohort split is a fused-tier concept.
        assert "kernel.collapse.full" not in counters

    def test_collapse_split_accounts_for_every_row(self, tracked, stream):
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5)
        counters = _counters(tracked, stream, config, kernel.FUSED)["counters"]
        split = (
            counters.get("kernel.collapse.full", 0)
            + counters.get("kernel.collapse.timeline", 0)
            + counters.get("kernel.collapse.scalar", 0)
        )
        assert split == counters["kernel.rows"]

    def test_lossless_fleet_fully_collapses(self, tracked, stream):
        """With no channel losses every row rides the shared verdict."""
        config = ProtocolConfig(gop_size=4, p_good=1.0, p_bad=0.0)
        counters = _counters(tracked, stream, config, kernel.FUSED)["counters"]
        assert counters["kernel.collapse.full"] == counters["kernel.rows"]
        assert counters.get("kernel.collapse.scalar", 0) == 0

    def test_rows_per_window_histogram(self, tracked, stream):
        config = ProtocolConfig(gop_size=4)
        snapshot = _counters(tracked, stream, config, kernel.FUSED)
        hist = snapshot["histograms"]["kernel.rows_per_window"]
        assert hist["count"] == MAX_WINDOWS
        assert hist["min"] == len(SEEDS)
        assert hist["max"] == len(SEEDS)
