"""Tests for the metric instruments and registry (repro.obs.registry)."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs.registry import (
    BUCKET_EDGES,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    NOOP_TIMER,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, fresh_registry):
        counter = obs.counter("test.hits")
        assert counter.snapshot() == 0
        counter.inc()
        counter.inc(41)
        assert counter.snapshot() == 42

    def test_same_name_same_instance(self, fresh_registry):
        assert obs.counter("test.hits") is obs.counter("test.hits")

    def test_cannot_decrease(self, fresh_registry):
        with pytest.raises(ValueError):
            obs.counter("test.hits").inc(-1)


class TestGauge:
    def test_last_write_wins(self, fresh_registry):
        gauge = obs.gauge("test.level")
        gauge.set(7)
        gauge.set(3)
        assert gauge.snapshot() == 3

    def test_add(self, fresh_registry):
        gauge = obs.gauge("test.level")
        gauge.add(2.5)
        gauge.add(-1.0)
        assert gauge.snapshot() == 1.5


class TestHistogram:
    def test_aggregates(self):
        hist = Histogram("test")
        for value in (1, 5, 10):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == 16.0
        assert snap["min"] == 1.0 and snap["max"] == 10.0
        assert snap["mean"] == pytest.approx(16 / 3)

    def test_power_of_two_buckets(self):
        hist = Histogram("test")
        hist.observe(1)  # <= 1
        hist.observe(3)  # <= 4
        hist.observe(100_000)  # <= 131072... beyond 65536 -> inf bucket
        snap = hist.snapshot()
        assert snap["buckets"] == {"1": 1, "4": 1, "inf": 1}

    def test_bucket_edges_cover_everything(self):
        assert BUCKET_EDGES[0] == 1.0
        assert math.isinf(BUCKET_EDGES[-1])
        assert BUCKET_EDGES == sorted(BUCKET_EDGES)

    def test_empty_snapshot(self):
        snap = Histogram("test").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0


class TestTimer:
    def test_span_records_duration(self, fresh_registry):
        timer = obs.timer("test.seconds")
        with timer.time():
            pass
        snap = timer.snapshot()
        assert snap["count"] == 1
        assert snap["total"] >= 0.0

    def test_stop_returns_elapsed(self, fresh_registry):
        span = obs.timer("test.seconds").time()
        elapsed = span.stop()
        assert elapsed >= 0.0


class TestEnableDisable:
    def test_disabled_returns_shared_noops(self):
        obs.disable()
        assert obs.counter("x") is NOOP_COUNTER
        assert obs.gauge("x") is NOOP_GAUGE
        assert obs.histogram("x") is NOOP_HISTOGRAM
        assert obs.timer("x") is NOOP_TIMER

    def test_noop_updates_record_nothing(self):
        obs.disable()
        obs.counter("x").inc(100)
        obs.gauge("x").set(5)
        obs.histogram("x").observe(1)
        with obs.timer("x").time():
            pass
        obs.set_info("x", "y")
        snap = obs.snapshot()
        assert "x" not in snap["counters"]
        assert "x" not in snap["info"]

    def test_enable_records_into_given_registry(self):
        registry = MetricsRegistry()
        obs.enable(registry)
        obs.counter("test.hits").inc()
        assert registry.snapshot()["counters"]["test.hits"] == 1


class TestRegistry:
    def test_snapshot_is_json_ready(self, fresh_registry):
        obs.counter("c").inc()
        obs.gauge("g").set(1.5)
        obs.histogram("h").observe(3)
        with obs.timer("t").time():
            pass
        obs.set_info("backend", "pure")
        encoded = json.dumps(obs.snapshot())
        decoded = json.loads(encoded)
        assert decoded["counters"]["c"] == 1
        assert decoded["info"]["backend"] == "pure"

    def test_reset_drops_everything(self, fresh_registry):
        obs.counter("c").inc()
        obs.set_info("k", "v")
        obs.reset()
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["info"] == {}

    def test_snapshot_sorted_by_name(self, fresh_registry):
        for name in ("z", "a", "m"):
            obs.counter(name).inc()
        assert list(obs.snapshot()["counters"]) == ["a", "m", "z"]
