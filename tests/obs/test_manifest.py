"""Tests for run manifests and their schema (repro.obs.manifest)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    default_schema_path,
    diff_manifests,
    load_manifest,
    load_schema,
    render_diff,
    save_manifest,
    validate_manifest,
)


def _sample_metrics() -> dict:
    return {
        "counters": {"channel.packets": 100, "channel.losses": 8},
        "gauges": {"sim.virtual_time": 12.5},
        "histograms": {
            "channel.loss_run": {
                "count": 3,
                "total": 8.0,
                "min": 1.0,
                "max": 5.0,
                "mean": 8 / 3,
                "buckets": {"1": 1, "2": 1, "8": 1},
            }
        },
        "timers": {},
        "info": {"accel.backend": "pure"},
    }


def _sample_manifest() -> dict:
    return build_manifest(
        experiment="figure8-pooled",
        config={"jobs": 1},
        seed=2000,
        backend="pure",
        metrics=_sample_metrics(),
        wall_seconds=1.25,
        virtual_seconds=1000.0,
        shape_holds=True,
        summary={"scrambled_mean_clf": 1.4},
    )


class TestBuildAndRoundtrip:
    def test_layout(self):
        manifest = _sample_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == "repro-run-manifest"
        assert manifest["timing"]["virtual_seconds"] == 1000.0
        assert manifest["metrics"]["counters"]["channel.packets"] == 100

    def test_save_load_roundtrip(self, tmp_path):
        path = save_manifest(_sample_manifest(), tmp_path / "runs" / "m.json")
        assert path.exists()
        loaded = load_manifest(path)
        assert loaded == _sample_manifest() | {"created_at": loaded["created_at"]}

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ConfigurationError):
            load_manifest(bad)

    def test_is_json_serializable(self):
        json.dumps(_sample_manifest())


class TestSchemaValidation:
    def test_checked_in_schema_exists(self):
        assert default_schema_path().exists()

    def test_sample_manifest_is_valid(self):
        assert validate_manifest(_sample_manifest()) == []

    def test_missing_required_key_fails(self):
        manifest = _sample_manifest()
        del manifest["backend"]
        errors = validate_manifest(manifest)
        assert any("backend" in error for error in errors)

    def test_unknown_top_level_key_fails(self):
        manifest = _sample_manifest()
        manifest["surprise"] = 1
        errors = validate_manifest(manifest)
        assert any("surprise" in error for error in errors)

    def test_bad_backend_enum_fails(self):
        manifest = _sample_manifest()
        manifest["backend"] = "cuda"
        errors = validate_manifest(manifest)
        assert any("cuda" in error for error in errors)

    def test_explicit_schema_argument(self):
        schema = load_schema(default_schema_path())
        assert validate_manifest(_sample_manifest(), schema) == []

    def test_missing_schema_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_schema(tmp_path / "nope.json")


class TestDiff:
    def test_identical_manifests(self):
        a, b = _sample_manifest(), _sample_manifest()
        diff = diff_manifests(a, b)
        assert diff["added"] == {} and diff["removed"] == {}
        assert diff["changed"] == {}
        assert "identical" in render_diff(
            {"header": {}, "added": {}, "removed": {}, "changed": {}}
        )

    def test_counter_change_and_header(self):
        a, b = _sample_manifest(), _sample_manifest()
        b["backend"] = "numpy"
        b["metrics"]["counters"]["channel.losses"] = 9
        b["metrics"]["counters"]["new.metric"] = 1
        del b["metrics"]["counters"]["channel.packets"]
        diff = diff_manifests(a, b)
        assert diff["header"]["backend"] == {"a": "pure", "b": "numpy"}
        assert diff["changed"]["counters.channel.losses"] == {"a": 8, "b": 9}
        assert "counters.new.metric" in diff["added"]
        assert "counters.channel.packets" in diff["removed"]
        rendered = render_diff(diff)
        assert "backend: 'pure' -> 'numpy'" in rendered
        assert "+ counters.new.metric" in rendered
        assert "- counters.channel.packets" in rendered

    def test_histogram_scalars_diffed(self):
        a, b = _sample_manifest(), _sample_manifest()
        b["metrics"]["histograms"]["channel.loss_run"]["max"] = 7.0
        diff = diff_manifests(a, b)
        assert diff["changed"]["histograms.channel.loss_run.max"] == {
            "a": 5.0,
            "b": 7.0,
        }


class TestExperimentManifest:
    """End to end: a real (small) experiment produces a schema-valid manifest."""

    def test_run_with_manifest_validates(self):
        from repro.experiments.runner import run_with_manifest

        rendered, shape, manifest = run_with_manifest("table1")
        obs.disable()
        assert "Table 1" in rendered
        assert shape is True
        assert manifest["experiment"] == "table1"
        assert manifest["backend"] in ("pure", "numpy")
        assert manifest["metrics"]["counters"]  # instrumentation fired
        assert manifest["metrics"]["info"]["accel.backend"] == manifest["backend"]
        assert validate_manifest(manifest) == []
