"""Disabled metrics must stay close to free on the hot paths.

The strict <2% budget is enforced by ``tools/obs_overhead_guard.py``
(run by CI's bench-smoke job with many repetitions).  These tests keep
a coarser functional version of the same promise in the regular suite:
the instrumented hot paths, with metrics off, must not be measurably
slower than the identical code without the instrumentation branch.  The
threshold is loose (25%) because shared test runners are noisy; the
point here is catching accidental *always-on* recording, which costs
far more than that.
"""

from __future__ import annotations

import time

from repro import accel, obs
from repro.network.markov import BAD, GOOD, GilbertModel


def _plain_losses(model: GilbertModel, count: int) -> list:
    """``GilbertModel.losses`` body with the obs branch removed."""
    draws = [model._rng.random() for _ in range(count)]
    states = accel.gilbert_states(
        draws, model.p_good, model.p_bad, start_bad=model._state == BAD
    )
    if states:
        model._state = BAD if states[-1] else GOOD
    return states


def _min_time(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


class TestDisabledOverhead:
    def test_disabled_losses_overhead_is_small(self):
        obs.disable()
        batch = 50_000
        instrumented = GilbertModel(p_good=0.92, p_bad=0.6, seed=3)
        baseline = GilbertModel(p_good=0.92, p_bad=0.6, seed=3)
        t_instr = _min_time(lambda: instrumented.losses(batch), repeats=7)
        t_base = _min_time(lambda: _plain_losses(baseline, batch), repeats=7)
        assert t_instr <= t_base * 1.25

    def test_disabled_updates_allocate_no_instruments(self):
        obs.disable()
        before = obs.snapshot()
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=3)
        model.losses(1000)
        for _ in range(100):
            model.step()
        accel.burst_runs(list(range(12)), 3)
        assert obs.snapshot() == before

    def test_enabled_records_channel_batch(self):
        registry = obs.enable()
        obs.reset()
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=3)
        states = model.losses(5000)
        obs.disable()
        snap = registry.snapshot()
        assert snap["counters"]["channel.packets"] == 5000
        assert snap["counters"]["channel.losses"] == sum(states)
        runs = snap["histograms"]["channel.loss_run"]
        assert runs["total"] == float(sum(states))

    def test_step_and_losses_agree_on_counts(self):
        registry = obs.enable()
        obs.reset()
        model = GilbertModel(p_good=0.92, p_bad=0.6, seed=3)
        lost = sum(model.step() for _ in range(500))
        obs.disable()
        snap = registry.snapshot()
        assert snap["counters"]["channel.packets"] == 500
        assert snap["counters"].get("channel.losses", 0) == lost
