"""Keep the process-global obs state from leaking between tests."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_obs_state():
    was_enabled = obs.enabled()
    previous = obs.get_registry()
    yield
    obs.enable(previous)  # restores the registry reference
    if not was_enabled:
        obs.disable()


@pytest.fixture
def fresh_registry() -> MetricsRegistry:
    """Enable metrics into a throwaway registry for one test."""
    registry = MetricsRegistry()
    obs.enable(registry)
    return registry
