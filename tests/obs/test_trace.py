"""Tests for the event-trace recorder (repro.obs.trace)."""

from __future__ import annotations

import pytest

from repro.network.simulator import EventLoop
from repro.obs.trace import (
    CANCELLED,
    FIRED,
    SCHEDULED,
    EventTrace,
    attach_trace,
)


def _noop() -> None:
    return None


class TestEventTrace:
    def test_records_in_order(self):
        trace = EventTrace()
        trace.record(1.0, SCHEDULED, "a")
        trace.record(2.0, FIRED, "a")
        kinds = [event.kind for event in trace.events()]
        assert kinds == [SCHEDULED, FIRED]
        assert trace.total == 2
        assert trace.last_time == 2.0

    def test_filter_by_kind(self):
        trace = EventTrace()
        trace.record(1.0, SCHEDULED, "a")
        trace.record(2.0, FIRED, "a")
        assert [e.label for e in trace.events(FIRED)] == ["a"]

    def test_ring_is_bounded(self):
        trace = EventTrace(capacity=10)
        for i in range(25):
            trace.record(float(i), FIRED, "e")
        assert len(trace.events()) == 10
        assert trace.total == 25
        assert trace.dropped == 15
        # Oldest retained event is the 16th recorded.
        assert trace.events()[0].time == 15.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_summary_counts(self):
        trace = EventTrace()
        trace.record(1.0, SCHEDULED, "a")
        trace.record(1.0, SCHEDULED, "b")
        trace.record(2.0, FIRED, "a")
        summary = trace.summary()
        assert summary["counts"] == {FIRED: 1, SCHEDULED: 2}
        assert summary["total"] == 3
        assert summary["dropped"] == 0
        assert summary["last_virtual_time"] == 2.0


class TestEventLoopIntegration:
    def test_attach_trace_sees_lifecycle(self):
        loop = EventLoop()
        trace = attach_trace(loop)
        assert loop.tracer is trace
        loop.schedule(1.0, _noop)
        keep = loop.schedule(2.0, _noop)
        cancel_me = loop.schedule(3.0, _noop)
        loop.cancel(cancel_me)
        loop.run()
        assert trace.counts[SCHEDULED] == 3
        assert trace.counts[CANCELLED] == 1
        assert trace.counts[FIRED] == 2
        fired_times = [e.time for e in trace.events(FIRED)]
        assert fired_times == [1.0, 2.0]
        assert keep.time == 2.0

    def test_labels_name_the_callback(self):
        loop = EventLoop()
        trace = attach_trace(loop)
        loop.schedule(1.0, _noop)
        label = trace.events(SCHEDULED)[0].label
        assert "_noop" in label

    def test_detach(self):
        loop = EventLoop()
        trace = attach_trace(loop)
        loop.set_tracer(None)
        loop.schedule(1.0, _noop)
        loop.run()
        assert trace.total == 0

    def test_virtual_span_measures_simulated_time(self):
        loop = EventLoop()
        trace = attach_trace(loop)
        loop.schedule(5.0, _noop)
        with trace.span(loop, "window") as span:
            loop.run()
        assert span.virtual_seconds == 5.0
        assert trace.counts["span-start"] == 1
        assert trace.counts["span-end"] == 1

    def test_existing_trace_can_be_reattached(self):
        trace = EventTrace()
        loop_a, loop_b = EventLoop(), EventLoop()
        assert attach_trace(loop_a, trace) is trace
        assert attach_trace(loop_b, trace) is trace
        loop_a.schedule(1.0, _noop)
        loop_b.schedule(1.0, _noop)
        assert trace.counts[SCHEDULED] == 2
