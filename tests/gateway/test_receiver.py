"""Receiver reconstruction: idempotent under duplication and reordering.

The receiver addresses every arrival by explicit (window, frame,
attempt, fragment) coordinates, so delivering the same datagrams twice,
or in any order, must finalize byte-identical REPORTs — and those
REPORTs must agree with the sender engine's own window measurements.
"""

from __future__ import annotations

import random

import pytest

from repro.core.protocol import ProtocolConfig
from repro.errors import GatewayError
from repro.gateway.receiver import GatewayReceiver
from repro.gateway.sender import GatewaySenderSession
from repro.gateway.shim import ImpairedLink
from repro.gateway.wire import decode
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream


def run_offline_session(seed=3, gops=4, **config_kwargs):
    """Drive the sender engine without sockets; returns the wire history.

    Returns ``(per_window, sender, receiver)`` where ``per_window`` is a
    list of ``(media_datagrams, trailer_bytes)`` and ``receiver`` is the
    baseline receiver whose REPORTs drove the sender's feedback loop.
    """
    config = ProtocolConfig(seed=seed, **config_kwargs)
    stream = make_video_stream(GOP_12, gop_count=gops)
    outbox = []
    link = ImpairedLink(config, emit=outbox.append)
    sender = GatewaySenderSession(stream, config, stream_id=1, link=link)
    receiver = GatewayReceiver()
    windows = list(stream.windows(config.window_frames))
    per_window = []
    for index, window in enumerate(windows):
        result = sender.run_window(index, window)
        trailer = sender.build_trailer(
            index, window, result, fin=(index == len(windows) - 1)
        )
        link.flush()
        media = list(outbox)
        outbox.clear()
        trailer_bytes = trailer.encode()
        per_window.append((media, trailer_bytes))
        for datagram in media:
            assert receiver.on_datagram(datagram) is None
        report_bytes = receiver.on_datagram(trailer_bytes)
        assert report_bytes is not None
        sender.complete_ack(
            sender.feedback_from_report(decode(report_bytes), result)
        )
    return per_window, sender, receiver


@pytest.fixture(scope="module")
def session():
    return run_offline_session()


class TestAgainstSender:
    def test_reports_match_engine_measurements(self, session):
        _, sender, receiver = session
        assert len(receiver.windows) == len(sender.result.windows)
        for window, result in zip(receiver.windows, sender.result.windows):
            assert window.report.clf == result.clf
            assert window.report.unit_losses == result.unit_losses
            assert window.report.alf == result.alf
            assert window.report.layer_bursts == result.layer_bursts
            assert window.report.loss_statistics == result.first_attempt_stats
            assert window.received == result.received
            assert window.arrival_times == result.arrival_times
            assert window.late == result.late
            assert window.decodable == result.decodable

    def test_fin_observed(self, session):
        _, _, receiver = session
        assert receiver.finished


class TestIdempotence:
    def _replay(self, per_window, mutate):
        replica = GatewayReceiver()
        reports = []
        for media, trailer_bytes in per_window:
            for datagram in mutate(list(media)):
                replica.on_datagram(datagram)
            reports.append(replica.on_datagram(trailer_bytes))
        return replica, reports

    def _baseline_reports(self, session):
        per_window, _, receiver = session
        return [receiver.report_for(i).encode() for i in range(len(per_window))]

    def test_duplicated_delivery(self, session):
        per_window, _, _ = session
        replica, reports = self._replay(
            per_window, lambda media: media + media
        )
        assert reports == self._baseline_reports(session)
        assert replica.duplicates == sum(len(m) for m, _ in per_window)

    def test_reversed_delivery(self, session):
        per_window, _, _ = session
        _, reports = self._replay(per_window, lambda media: media[::-1])
        assert reports == self._baseline_reports(session)

    def test_shuffled_delivery(self, session):
        per_window, _, _ = session
        rng = random.Random(1234)

        def shuffle(media):
            rng.shuffle(media)
            return media

        _, reports = self._replay(per_window, shuffle)
        assert reports == self._baseline_reports(session)

    def test_duplicate_trailer_resends_cached_report(self, session):
        per_window, _, _ = session
        replica = GatewayReceiver()
        media, trailer_bytes = per_window[0]
        for datagram in media:
            replica.on_datagram(datagram)
        first = replica.on_datagram(trailer_bytes)
        second = replica.on_datagram(trailer_bytes)
        assert first == second
        assert len(replica.windows) == 1

    def test_straggler_after_finalize_is_ignored(self, session):
        per_window, _, _ = session
        media, trailer_bytes = per_window[0]
        if not media:
            pytest.skip("window produced no media datagrams")
        replica = GatewayReceiver()
        for datagram in media[1:]:
            replica.on_datagram(datagram)
        report = replica.on_datagram(trailer_bytes)
        assert replica.on_datagram(media[0]) is None  # straggler
        assert replica.report_for(0).encode() == report


class TestGuards:
    def test_stream_id_mismatch(self, session):
        per_window, _, _ = session
        media, _ = per_window[0]
        if not media:
            pytest.skip("window produced no media datagrams")
        strict = GatewayReceiver(stream_id=2)
        with pytest.raises(GatewayError):
            strict.on_datagram(media[0])

    def test_report_datagram_rejected(self, session):
        per_window, _, receiver = session
        report = receiver.report_for(0)
        with pytest.raises(GatewayError):
            GatewayReceiver().on_datagram(report.encode())

    def test_empty_window_finalizes(self):
        """A trailer with no preceding media measures an all-lost window."""
        from repro.gateway.wire import WindowTrailer
        from repro.media.ldu import FrameType

        trailer = WindowTrailer(
            stream_id=9, window=0, frames=2, playback_start=1.0, fps=24.0,
            closed_gops=False, frame_types=(FrameType.I, FrameType.P),
            layer_sizes=(2,), offered_first=(0, 1),
        )
        receiver = GatewayReceiver()
        report = decode(receiver.on_datagram(trailer.encode()))
        assert report.unit_losses == 2
        assert report.layer_bursts == {0: 2}
        assert report.loss_statistics == (2, 1, 2)
