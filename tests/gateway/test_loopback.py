"""The differential battery: real-socket gateway == simulator, pinned.

Each probe stands up a real TCP control connection and a real UDP
loopback data path, streams a seeded session, and asserts the sender's
:class:`~repro.core.protocol.SessionResult`, the per-window
CLF/ALF/`b̂`/Gilbert trajectory, and the receiver's independent REPORT
measurements are *bit-for-bit* the simulated session's — on every
available acceleration backend.  This file must keep passing with
NumPy absent (the ``gateway-smoke`` CI job runs it on the pure
backend), so it never imports it.
"""

from __future__ import annotations

import pytest

from repro import accel
from repro.core.protocol import run_session
from repro.gateway.probe import ProbeSpec, run_loopback_probe
from repro.gateway.sender import snapshot_trajectory
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.serve import SessionRequest, serve_sessions

#: The seeded configurations the acceptance criteria pin (>= 3), one
#: with real datagram reordering and one on the quantile burst policy.
BATTERY = [
    pytest.param(ProbeSpec(seed=7), id="seed7-baseline"),
    pytest.param(ProbeSpec(seed=11, reorder_span=5), id="seed11-reordered"),
    pytest.param(
        ProbeSpec(seed=2000, config_overrides={"burst_policy": "quantile"}),
        id="seed2000-quantile",
    ),
    pytest.param(
        ProbeSpec(seed=3, gops=6, max_windows=3,
                  config_overrides={"p_bad": 0.5}),
        id="seed3-lossier",
    ),
]


@pytest.mark.parametrize("spec", BATTERY)
def test_differential_battery(spec):
    """Gateway == object engine == columnar kernel, on every backend."""
    previous = accel.backend_name()
    try:
        for name in accel.available_backends():
            accel.set_backend(name)
            outcome = run_loopback_probe(spec)
            assert outcome.matches, (
                f"backend {name!r}:\n" + "\n".join(outcome.mismatches)
            )
            assert len(outcome.gateway_trajectory) == len(
                outcome.simulated_trajectory
            )
            assert outcome.gateway_trajectory == outcome.simulated_trajectory
    finally:
        accel.set_backend(previous)


@pytest.mark.parametrize("spec", BATTERY)
def test_matches_streaming_service(spec):
    """The gateway session equals the K = 1 StreamingService session."""
    outcome = run_loopback_probe(spec)
    stream = make_video_stream(GOP_12, gop_count=spec.gops)
    config = spec.config()
    request = SessionRequest(
        session_id="only",
        stream=stream,
        config=config,
        max_windows=spec.max_windows,
    )
    service = serve_sessions([request], config.bandwidth_bps)
    assert len(service.admitted) == 1
    assert service.outcomes[0].result == outcome.gateway_result


def test_feedback_actually_drives_adaptation():
    """The b-hat trajectory moves once real REPORTs start arriving."""
    outcome = run_loopback_probe(ProbeSpec(seed=7))
    assert outcome.matches
    first = dict(outcome.gateway_trajectory[0].layer_estimates)
    last = dict(outcome.gateway_trajectory[-1].layer_estimates)
    assert first != last, "feedback never moved the Equation-1 estimates"


def test_trajectory_is_reproducible():
    spec = ProbeSpec(seed=42, gops=6, max_windows=3)
    first = run_loopback_probe(spec)
    second = run_loopback_probe(spec)
    assert first.matches and second.matches
    assert first.gateway_trajectory == second.gateway_trajectory
    assert first.gateway_result == second.gateway_result


def test_snapshot_trajectory_matches_kernel_engine():
    """The reference anchor itself agrees with run_session."""
    stream = make_video_stream(GOP_12, gop_count=6)
    from repro.core.protocol import ProtocolConfig

    config = ProtocolConfig(seed=13)
    result, points = snapshot_trajectory(stream, config, max_windows=3)
    assert result == run_session(stream, config, max_windows=3)
    assert [point.window for point in points] == [0, 1, 2]
