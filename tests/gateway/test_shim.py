"""The impairment shim: seeded determinism of drops and reordering."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig
from repro.errors import ConfigurationError
from repro.gateway.shim import ImpairedLink, ReorderBuffer
from repro.network.channel import make_duplex
from repro.network.packet import Packet


def _emitted(span, items, seed=0):
    out = []
    buffer = ReorderBuffer(span, out.append, seed=seed)
    for item in items:
        buffer.push(item)
    buffer.flush()
    return out, buffer


class TestReorderBuffer:
    def test_span_zero_is_passthrough(self):
        items = [bytes([i]) for i in range(10)]
        out, buffer = _emitted(0, items)
        assert out == items
        assert buffer.reordered == 0

    def test_deterministic_given_seed(self):
        items = [bytes([i]) for i in range(50)]
        first, _ = _emitted(4, items, seed=9)
        second, _ = _emitted(4, items, seed=9)
        assert first == second

    def test_actually_reorders(self):
        items = [bytes([i]) for i in range(50)]
        out, buffer = _emitted(4, items, seed=9)
        assert sorted(out) == sorted(items)
        assert out != items
        assert buffer.reordered > 0

    def test_different_seeds_differ(self):
        items = [bytes([i]) for i in range(50)]
        first, _ = _emitted(4, items, seed=1)
        second, _ = _emitted(4, items, seed=2)
        assert first != second

    def test_flush_drains_everything(self):
        out, buffer = _emitted(100, [bytes([i]) for i in range(5)])
        assert len(out) == 5

    def test_negative_span_rejected(self):
        with pytest.raises(ConfigurationError):
            ReorderBuffer(-1, lambda _: None)


class TestImpairedLink:
    def test_channels_match_the_simulators_duplex(self):
        """The link's loss realization is the simulator's, draw for draw."""
        config = ProtocolConfig(seed=17)
        link = ImpairedLink(config, emit=lambda _: None)
        forward, feedback = make_duplex(
            config.bandwidth_bps,
            config.rtt,
            p_good=config.p_good,
            p_bad=config.p_bad,
            seed=config.seed,
            lossy_feedback=config.lossy_feedback,
        )
        assert link.forward.propagation_delay == config.rtt / 2.0
        packets = [
            Packet(sequence=i, frame_index=0, size_bytes=1200) for i in range(200)
        ]
        ours = [t.lost for t in link.forward.send_all(packets, 0.0)]
        theirs = [t.lost for t in forward.send_all(packets, 0.0)]
        assert ours == theirs
        ack = Packet(sequence=999, frame_index=0, size_bytes=40)
        assert link.feedback.send(ack, 1.0).lost == feedback.send(ack, 1.0).lost

    def test_emit_passes_through_reorder(self):
        config = ProtocolConfig(seed=0)
        out = []
        link = ImpairedLink(config, emit=out.append, reorder_span=0)
        link.emit(b"a")
        link.emit(b"b")
        assert out == [b"a", b"b"]
        link.drop()  # only counts; must not raise with metrics off
        assert link.reordered == 0

    def test_reorder_span_scrambles_emission(self):
        config = ProtocolConfig(seed=4)
        out = []
        link = ImpairedLink(config, emit=out.append, reorder_span=6)
        items = [bytes([i]) for i in range(40)]
        for item in items:
            link.emit(item)
        link.flush()
        assert sorted(out) == sorted(items)
        assert out != items
        assert link.reordered > 0
