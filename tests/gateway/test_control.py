"""Control-plane grammar: valid requests parse, malformed ones get 4xx.

The Hypothesis fuzzers assert the parser's one hard guarantee: for
*any* byte string — including mutations of well-formed requests —
``parse_request`` either returns a request or raises
:class:`~repro.errors.ControlError` carrying a proper 4xx/5xx status.
It never raises anything else and never kills the caller's loop.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ControlError
from repro.gateway.control import (
    METHODS,
    ControlRequest,
    SessionState,
    format_request,
    format_response,
    parse_request,
    parse_response,
)


def _parse(head: bytes, body: bytes = b""):
    try:
        return parse_request(head, body)
    except ControlError as exc:
        assert 400 <= exc.status < 600
        assert exc.reason
        return None


class TestValidRequests:
    def test_round_trip(self):
        raw = format_request(
            "SETUP",
            "rtsp://h/stream",
            7,
            headers={"Session": "ES000001"},
            body=b"{}",
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        request = parse_request(head, body)
        assert request.method == "SETUP"
        assert request.cseq == 7
        assert request.session_id == "ES000001"
        assert request.body == b"{}"

    def test_bare_lf_tolerated(self):
        request = parse_request(b"PLAY rtsp://h/s RTSP/1.0\nCSeq: 3\n\n")
        assert request.method == "PLAY"
        assert request.cseq == 3

    def test_asterisk_target(self):
        assert parse_request(b"OPTIONS * RTSP/1.0\r\nCSeq: 0\r\n\r\n").cseq == 0

    def test_response_round_trip(self):
        raw = format_response(200, 9, headers={"Session": "x"})
        head, _, body = raw.partition(b"\r\n\r\n")
        status, headers, _ = parse_response(head, body)
        assert status == 200
        assert headers["cseq"] == "9"
        assert headers["session"] == "x"


class TestRejections:
    @pytest.mark.parametrize(
        "head, status",
        [
            (b"", 400),
            (b"PLAY rtsp://h/s\r\nCSeq: 1\r\n\r\n", 400),        # no version
            (b"PLAY rtsp://h/s HTTP/1.1\r\nCSeq: 1\r\n\r\n", 400),
            (b"PLAY rtsp://h/s RTSP/1.0\r\n\r\n", 400),           # no CSeq
            (b"PLAY rtsp://h/s RTSP/1.0\r\nCSeq: x7\r\n\r\n", 400),
            (b"PLAY rtsp://h/s RTSP/1.0\r\nCSeq: -1\r\n\r\n", 400),
            (b"PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 99999999999\r\n\r\n", 400),
            (b"PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\nCSeq: 2\r\n\r\n", 400),
            (b"PLAY rtsp://h/s RTSP/1.0\r\nNoColonHere\r\nCSeq: 1\r\n\r\n", 400),
            (b"DESCRIBE rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\n\r\n", 501),
            (b"PLAY http://h/s RTSP/1.0\r\nCSeq: 1\r\n\r\n", 404),
            ("PLAY rtsp://h/ś RTSP/1.0\r\nCSeq: 1\r\n\r\n".encode("utf-8"), 400),
        ],
    )
    def test_statuses(self, head, status):
        with pytest.raises(ControlError) as err:
            parse_request(head)
        assert err.value.status == status

    def test_body_length_mismatch(self):
        head = b"SETUP rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\nContent-Length: 5\r\n\r\n"
        with pytest.raises(ControlError) as err:
            parse_request(head, b"123")
        assert err.value.status == 400

    def test_body_without_length(self):
        head = b"SETUP rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\n\r\n"
        with pytest.raises(ControlError) as err:
            parse_request(head, b"unexpected")
        assert err.value.status == 400

    def test_oversized_header_line(self):
        head = (
            b"PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\nX-Pad: "
            + b"a" * 5000
            + b"\r\n\r\n"
        )
        with pytest.raises(ControlError) as err:
            parse_request(head)
        assert err.value.status == 400


class TestFuzz:
    @given(st.binary(max_size=512))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes(self, blob):
        result = _parse(blob)
        assert result is None or isinstance(result, ControlRequest)

    @given(
        st.sampled_from(METHODS),
        st.integers(min_value=0, max_value=10**6),
        st.data(),
    )
    @settings(max_examples=300, deadline=None)
    def test_mutated_valid_request(self, method, cseq, data):
        raw = format_request(
            method, "rtsp://host/stream", cseq, headers={"Session": "ES000009"}
        )
        head = bytearray(raw[: -len(b"\r\n\r\n")] + b"\r\n\r\n")
        # Mutate up to three bytes anywhere in the head.
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            index = data.draw(
                st.integers(min_value=0, max_value=len(head) - 1)
            )
            head[index] = data.draw(st.integers(min_value=0, max_value=255))
        result = _parse(bytes(head))
        assert result is None or isinstance(result, ControlRequest)

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        min_codepoint=33, max_codepoint=126, exclude_characters=":"
                    ),
                    min_size=1,
                    max_size=12,
                ),
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    max_size=24,
                ),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_headers(self, extra_headers):
        lines = ["PLAY rtsp://h/s RTSP/1.0", "CSeq: 1"]
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        result = _parse(head)
        assert result is None or result.cseq == 1


class TestSessionState:
    def test_happy_path(self):
        state = SessionState()
        assert state.transition("SETUP") == SessionState.READY
        assert state.transition("PLAY") == SessionState.PLAYING
        assert state.transition("PAUSE") == SessionState.PAUSED
        assert state.transition("PLAY") == SessionState.PLAYING
        assert state.transition("TEARDOWN") == SessionState.DONE

    def test_play_before_setup(self):
        with pytest.raises(ControlError) as err:
            SessionState().transition("PLAY")
        assert err.value.status == 455

    def test_nothing_after_teardown(self):
        state = SessionState()
        state.transition("SETUP")
        state.transition("TEARDOWN")
        for method in ("SETUP", "PLAY", "PAUSE", "TEARDOWN"):
            with pytest.raises(ControlError):
                state.transition(method)

    def test_double_setup(self):
        state = SessionState()
        state.transition("SETUP")
        with pytest.raises(ControlError) as err:
            state.transition("SETUP")
        assert err.value.status == 455
