"""Property tests for the gateway's binary datagram format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.gateway.wire import (
    MAGIC,
    MediaDatagram,
    WindowReport,
    WindowTrailer,
    decode,
)
from repro.media.ldu import FrameType

u32 = st.integers(min_value=0, max_value=2**32 - 1)
u16 = st.integers(min_value=0, max_value=2**16 - 1)
vtimes = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def media_datagrams(draw):
    fragments = draw(st.integers(min_value=1, max_value=255))
    return MediaDatagram(
        stream_id=draw(u32),
        window=draw(u32),
        frame_offset=draw(u16),
        layer=draw(u16),
        layer_slot=draw(u16),
        attempt=draw(st.integers(min_value=1, max_value=255)),
        fragment=draw(st.integers(min_value=0, max_value=fragments - 1)),
        fragments=fragments,
        payload_bytes=draw(u32),
        arrival_vtime=draw(vtimes),
        retransmission=draw(st.booleans()),
    )


@st.composite
def window_trailers(draw):
    types = draw(
        st.lists(st.sampled_from(list(FrameType)), min_size=1, max_size=48)
    )
    layer_sizes = draw(st.lists(u16, min_size=0, max_size=12))
    offered = draw(st.lists(u16, min_size=0, max_size=48))
    return WindowTrailer(
        stream_id=draw(u32),
        window=draw(u32),
        frames=len(types),
        playback_start=draw(vtimes),
        fps=draw(st.floats(min_value=1.0, max_value=120.0)),
        closed_gops=draw(st.booleans()),
        frame_types=tuple(types),
        layer_sizes=tuple(layer_sizes),
        offered_first=tuple(offered),
        fin=draw(st.booleans()),
    )


@st.composite
def window_reports(draw):
    total = draw(st.integers(min_value=0, max_value=2**31 - 1))
    lost = draw(st.integers(min_value=0, max_value=total))
    runs = draw(st.integers(min_value=0, max_value=lost))
    layers = draw(
        st.dictionaries(u16, u16, max_size=12)
    )
    return WindowReport(
        stream_id=draw(u32),
        window=draw(u32),
        clf=draw(u16),
        unit_losses=draw(u16),
        frames=draw(u16),
        loss_statistics=(lost, runs, total),
        layer_bursts=layers,
    )


class TestRoundTrip:
    @given(media_datagrams())
    @settings(max_examples=200, deadline=None)
    def test_media(self, datagram):
        assert decode(datagram.encode()) == datagram

    @given(window_trailers())
    @settings(max_examples=200, deadline=None)
    def test_trailer(self, trailer):
        assert decode(trailer.encode()) == trailer

    @given(window_reports())
    @settings(max_examples=200, deadline=None)
    def test_report(self, report):
        assert decode(report.encode()) == report


class TestStrictness:
    @given(
        st.one_of(media_datagrams(), window_trailers(), window_reports()),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_truncation_raises(self, message, data):
        encoded = message.encode()
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(WireFormatError):
            decode(encoded[:cut])

    @given(st.one_of(media_datagrams(), window_trailers(), window_reports()))
    @settings(max_examples=100, deadline=None)
    def test_trailing_bytes_raise(self, message):
        with pytest.raises(WireFormatError):
            decode(message.encode() + b"\x00")

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decode(blob)
        except WireFormatError:
            pass  # the only acceptable failure mode

    def test_bad_magic(self):
        good = MediaDatagram(
            stream_id=1, window=0, frame_offset=0, layer=0, layer_slot=0,
            attempt=1, fragment=0, fragments=1, payload_bytes=10,
            arrival_vtime=0.5,
        ).encode()
        assert decode(good)
        with pytest.raises(WireFormatError):
            decode(b"\x00" + good[1:])

    def test_bad_version(self):
        import struct

        good = WindowReport(
            stream_id=1, window=0, clf=0, unit_losses=0, frames=24,
            loss_statistics=(0, 0, 0),
        ).encode()
        bad = struct.pack("!HBB", MAGIC, 99, good[3]) + good[4:]
        with pytest.raises(WireFormatError):
            decode(bad)

    def test_unknown_type(self):
        import struct

        blob = struct.pack("!HBB", MAGIC, 1, 200)
        with pytest.raises(WireFormatError):
            decode(blob)

    def test_invalid_media_coordinates(self):
        base = MediaDatagram(
            stream_id=1, window=0, frame_offset=0, layer=0, layer_slot=0,
            attempt=1, fragment=0, fragments=2, payload_bytes=10,
            arrival_vtime=0.5,
        )
        from dataclasses import replace

        for bad in (
            dict(fragment=2),      # fragment >= fragments
            dict(attempt=0),       # attempts are 1-based
        ):
            with pytest.raises(WireFormatError):
                decode(replace(base, **bad).encode())

    def test_trailer_type_count_mismatch_rejected_at_encode(self):
        trailer = WindowTrailer(
            stream_id=1, window=0, frames=3, playback_start=1.0, fps=24.0,
            closed_gops=False, frame_types=(FrameType.I,),
            layer_sizes=(), offered_first=(),
        )
        with pytest.raises(WireFormatError):
            trailer.encode()

    def test_unknown_frame_type_code(self):
        trailer = WindowTrailer(
            stream_id=1, window=0, frames=1, playback_start=1.0, fps=24.0,
            closed_gops=False, frame_types=(FrameType.I,),
            layer_sizes=(), offered_first=(),
        )
        encoded = bytearray(trailer.encode())
        encoded[-1] = 250  # the lone frame-type byte
        with pytest.raises(WireFormatError):
            decode(bytes(encoded))
