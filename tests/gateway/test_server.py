"""Server behaviour over real sockets: error answers, lifecycle, retries."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.gateway import control
from repro.gateway.receiver import GatewayReceiver
from repro.gateway.server import GatewayServer


def _control_session(exchanges):
    """Open one TCP control connection and run raw request/response pairs.

    ``exchanges`` is a list of raw request byte strings; returns the
    parsed ``(status, headers)`` of each response, proving the
    connection survived every earlier (possibly malformed) request.
    """

    async def go():
        server = GatewayServer()
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.control_port
            )
            responses = []
            for raw in exchanges:
                writer.write(raw)
                await writer.drain()
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0
                )
                responses.append(control.parse_response(head)[:2])
            writer.close()
            return responses
        finally:
            await server.stop()

    return asyncio.run(go())


def _request(method, cseq, *, headers=None, body=b""):
    return control.format_request(
        method, "rtsp://127.0.0.1/stream", cseq, headers=headers, body=body
    )


class TestControlErrors:
    def test_malformed_then_valid_on_same_connection(self):
        """A bad request gets 400; the connection keeps serving."""
        responses = _control_session(
            [
                b"NONSENSE\r\nCSeq: 4\r\n\r\n",
                _request("OPTIONS", 5),
            ]
        )
        assert responses[0][0] == 400
        assert responses[0][1].get("cseq") == "4"  # best-effort echo
        assert responses[1][0] == 200
        assert "OPTIONS" in responses[1][1].get("public", "")

    def test_play_before_setup_is_454(self):
        (status, _), = _control_session(
            [_request("PLAY", 1, headers={"Session": "ES000001"})]
        )
        assert status == 454

    def test_play_without_session_header_is_454(self):
        (status, _), = _control_session([_request("PLAY", 1)])
        assert status == 454

    def test_unknown_method_is_501(self):
        (status, _), = _control_session(
            [b"DESCRIBE rtsp://h/s RTSP/1.0\r\nCSeq: 2\r\n\r\n"]
        )
        assert status == 501

    def test_bad_cseq_is_400(self):
        (status, headers), = _control_session(
            [b"OPTIONS * RTSP/1.0\r\nCSeq: nope\r\n\r\n"]
        )
        assert status == 400
        assert "cseq" not in headers

    @pytest.mark.parametrize(
        "body",
        [
            b"this is not json",
            json.dumps({"client_port": 5000, "config": {"bogus_knob": 1}}).encode(),
            json.dumps({"client_port": 5000, "config": {"gop_size": -1}}).encode(),
            json.dumps({"client_port": -4}).encode(),
            json.dumps({"client_port": 5000, "gops": 0}).encode(),
            json.dumps([1, 2, 3]).encode(),
            b"",
        ],
    )
    def test_bad_setup_bodies_are_400(self, body):
        (status, _), = _control_session([_request("SETUP", 1, body=body)])
        assert status == 400

    def test_setup_answers_session_and_transport(self):
        (status, headers), = _control_session(
            [
                _request(
                    "SETUP",
                    1,
                    body=json.dumps(
                        {"gops": 2, "max_windows": 1, "client_port": 39999}
                    ).encode(),
                )
            ]
        )
        assert status == 200
        assert headers.get("session", "").startswith("ES")
        assert "server_port=" in headers.get("transport", "")

    def test_pause_before_play_is_455(self):
        setup = _request(
            "SETUP",
            1,
            body=json.dumps(
                {"gops": 2, "max_windows": 1, "client_port": 39998}
            ).encode(),
        )
        responses = _control_session(
            [setup, _request("PAUSE", 2, headers={"Session": "ES000001"})]
        )
        assert responses[0][0] == 200
        assert responses[1][0] == 455


class _CollectingEndpoint(asyncio.DatagramProtocol):
    """Client endpoint that can drop the first N trailers per window."""

    def __init__(self, receiver, *, ignore_first_trailers=0):
        self.receiver = receiver
        self.ignore = ignore_first_trailers
        self.trailer_counts = {}
        self.finished = asyncio.Event()
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        from repro.gateway.wire import TYPE_TRAILER, WIRE_VERSION  # noqa: F401

        is_trailer = len(data) >= 4 and data[3] == TYPE_TRAILER
        if is_trailer:
            window = int.from_bytes(data[9:13], "big")
            seen = self.trailer_counts.get(window, 0)
            self.trailer_counts[window] = seen + 1
            if seen < self.ignore:
                return  # drop it: force the server to resend
        response = self.receiver.on_datagram(data)
        if response is not None:
            self.transport.sendto(response, addr)
        if self.receiver.finished:
            self.finished.set()


def _stream_session(*, ignore_first_trailers=0, report_timeout=0.25):
    """SETUP/PLAY a short session; returns (server session, receiver)."""

    async def go():
        server = GatewayServer(report_timeout=report_timeout)
        await server.start()
        receiver = GatewayReceiver()
        endpoint = _CollectingEndpoint(
            receiver, ignore_first_trailers=ignore_first_trailers
        )
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: endpoint, local_addr=(server.host, 0)
        )
        try:
            client_port = transport.get_extra_info("sockname")[1]
            reader, writer = await asyncio.open_connection(
                server.host, server.control_port
            )
            body = json.dumps(
                {"gops": 2, "max_windows": 1, "client_port": client_port}
            ).encode()
            writer.write(_request("SETUP", 1, body=body))
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status, headers, _ = control.parse_response(head)
            assert status == 200
            session_id = headers["session"]
            writer.write(
                _request("PLAY", 2, headers={"Session": session_id})
            )
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            session = server.sessions[session_id]
            await asyncio.wait_for(session.done.wait(), timeout=20.0)
            writer.close()
            return session, receiver, dict(endpoint.trailer_counts)
        finally:
            transport.close()
            await server.stop()

    return asyncio.run(go())


class TestDataPlane:
    def test_session_completes_and_measures(self):
        session, receiver, _ = _stream_session()
        assert session.error is None
        assert len(session.results) == 1
        assert len(receiver.windows) == 1
        assert receiver.windows[0].report.clf == session.results[0].clf

    def test_lost_trailer_is_resent(self):
        """Dropping the first trailer forces a timeout + resend."""
        session, receiver, trailer_counts = _stream_session(
            ignore_first_trailers=1
        )
        assert session.error is None
        assert len(session.results) == 1
        assert trailer_counts[0] >= 2  # original + at least one resend
        assert receiver.windows[0].report.clf == session.results[0].clf

    def test_report_exhaustion_surfaces_as_session_error(self):
        """A client that never answers REPORTs fails the pump cleanly."""
        session, _, trailer_counts = _stream_session(
            ignore_first_trailers=99, report_timeout=0.05
        )
        assert session.error is not None
        assert "no REPORT" in session.error
        assert trailer_counts[0] >= 2
