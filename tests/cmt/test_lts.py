"""Tests for the Logical Time System (repro.cmt.lts)."""

from __future__ import annotations

import pytest

from repro.cmt.lts import LogicalTimeSystem
from repro.errors import PipelineError


class TestClock:
    def test_starts_paused_at_zero(self):
        lts = LogicalTimeSystem()
        assert not lts.running
        assert lts.logical(100.0) == 0.0

    def test_start_and_advance(self):
        lts = LogicalTimeSystem()
        lts.start(10.0)
        assert lts.logical(12.5) == pytest.approx(2.5)

    def test_double_start_rejected(self):
        lts = LogicalTimeSystem()
        lts.start(0.0)
        with pytest.raises(PipelineError):
            lts.start(1.0)

    def test_pause_freezes(self):
        lts = LogicalTimeSystem()
        lts.start(0.0)
        lts.pause(3.0)
        assert lts.logical(100.0) == pytest.approx(3.0)

    def test_pause_requires_running(self):
        with pytest.raises(PipelineError):
            LogicalTimeSystem().pause(0.0)

    def test_resume_continues(self):
        lts = LogicalTimeSystem()
        lts.start(0.0)
        lts.pause(3.0)
        lts.start(10.0)
        assert lts.logical(12.0) == pytest.approx(5.0)

    def test_speed(self):
        lts = LogicalTimeSystem(speed=2.0)
        lts.start(0.0)
        assert lts.logical(3.0) == pytest.approx(6.0)

    def test_set_speed_continuous(self):
        lts = LogicalTimeSystem()
        lts.start(0.0)
        lts.set_speed(2.0, 5.0)
        assert lts.logical(5.0) == pytest.approx(5.0)  # no jump
        assert lts.logical(6.0) == pytest.approx(7.0)

    def test_invalid_speed(self):
        with pytest.raises(PipelineError):
            LogicalTimeSystem(speed=0)
        lts = LogicalTimeSystem()
        lts.start(0.0)
        with pytest.raises(PipelineError):
            lts.set_speed(-1.0, 1.0)

    def test_seek(self):
        lts = LogicalTimeSystem()
        lts.start(0.0)
        lts.seek(100.0, 50.0)
        assert lts.logical(51.0) == pytest.approx(101.0)

    def test_real_for(self):
        lts = LogicalTimeSystem(speed=2.0)
        lts.start(10.0)
        assert lts.real_for(4.0, real_now=0.0) == pytest.approx(12.0)

    def test_real_for_requires_running(self):
        with pytest.raises(PipelineError):
            LogicalTimeSystem().real_for(1.0, 0.0)
