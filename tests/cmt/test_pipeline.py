"""Tests for the CMT pipeline (repro.cmt.pipeline)."""

from __future__ import annotations

import pytest

from repro.cmt import OrderingPolicy, Pipeline
from repro.errors import PipelineError
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream


@pytest.fixture(scope="module")
def stream():
    return make_video_stream(GOP_12, gop_count=8)


class TestPipeline:
    def test_lossless_run_is_clean(self, stream):
        pipeline = Pipeline(
            stream,
            window_size=24,
            policy=OrderingPolicy.LAYERED_CPO,
            bandwidth_bps=50_000_000,
            p_good=1.0,
            p_bad=0.0,
        )
        result = pipeline.run()
        assert result.mean_clf == 0.0
        assert result.frames_dropped == 0
        assert len(result.playouts) == 4

    def test_max_windows(self, stream):
        pipeline = Pipeline(stream, window_size=24, p_good=1.0, p_bad=0.0,
                            bandwidth_bps=50_000_000)
        result = pipeline.run(max_windows=2)
        assert len(result.playouts) == 2

    def test_cycle_time_default(self, stream):
        pipeline = Pipeline(stream, window_size=24)
        assert pipeline.cycle_time == pytest.approx(1.0)

    def test_cycle_time_override(self, stream):
        pipeline = Pipeline(stream, window_size=24, cycle_time=0.5)
        assert pipeline.cycle_time == 0.5

    def test_invalid_cycle_time(self, stream):
        with pytest.raises(PipelineError):
            Pipeline(stream, window_size=24, cycle_time=-1)

    def test_invalid_window(self, stream):
        with pytest.raises(PipelineError):
            Pipeline(stream, window_size=0)

    def test_describe(self, stream):
        pipeline = Pipeline(stream, window_size=24, p_good=1.0, p_bad=0.0,
                            bandwidth_bps=50_000_000)
        assert "layered-cpo" in pipeline.run().describe()

    def test_deterministic(self, stream):
        a = Pipeline(stream, window_size=24, seed=5, p_bad=0.6).run()
        b = Pipeline(stream, window_size=24, seed=5, p_bad=0.6).run()
        assert a.series.clf_values == b.series.clf_values

    def test_policies_comparable_on_same_seed(self, stream):
        results = {}
        for policy in OrderingPolicy:
            pipeline = Pipeline(
                stream, window_size=24, policy=policy, seed=5, p_bad=0.6
            )
            results[policy] = pipeline.run()
        # the layered CPO policy should not be worse than naive playback
        assert (
            results[OrderingPolicy.LAYERED_CPO].mean_clf
            <= results[OrderingPolicy.PLAYBACK].mean_clf + 0.75
        )


class TestPipelineWithOtherMedia:
    def test_independent_stream_pipeline(self):
        from repro.media.mjpeg import MjpegConfig, make_mjpeg_stream

        stream = make_mjpeg_stream(MjpegConfig(frame_count=120, seed=3))
        pipeline = Pipeline(
            stream,
            window_size=30,
            policy=OrderingPolicy.LAYERED_CPO,
            bandwidth_bps=20_000_000,
            p_bad=0.6,
            seed=4,
        )
        result = pipeline.run()
        assert len(result.playouts) == 4
        # MJPEG: no anchors, so no retransmissions ever
        assert pipeline.packet_source.retransmissions == 0

    def test_audio_stream_pipeline(self):
        from repro.media.audio import AudioConfig, make_audio_stream

        stream = make_audio_stream(AudioConfig(duration_seconds=8))
        pipeline = Pipeline(
            stream,
            window_size=30,
            policy=OrderingPolicy.LAYERED_CPO,
            bandwidth_bps=2_000_000,
            p_bad=0.5,
            seed=5,
        )
        result = pipeline.run()
        assert len(result.playouts) == 8

    def test_h261_pipeline_retransmits_chain(self):
        from repro.media.h261 import H261Config, make_h261_stream

        stream = make_h261_stream(H261Config(frame_count=120, seed=2))
        pipeline = Pipeline(
            stream,
            window_size=24,
            policy=OrderingPolicy.LAYERED_CPO,
            bandwidth_bps=4_000_000,
            p_bad=0.6,
            seed=6,
        )
        result = pipeline.run()
        assert len(result.playouts) == 5
        # chains make nearly every frame an anchor: retransmission happens
        assert pipeline.packet_source.retransmissions > 0
