"""Tests for CMT pipeline objects (repro.cmt.objects)."""

from __future__ import annotations

import pytest

from repro.cmt.objects import (
    ClientBuffer,
    FileSegmentSource,
    OrderingPolicy,
    PacketSource,
)
from repro.errors import PipelineError
from repro.media.gop import GOP_12
from repro.media.stream import make_independent_stream, make_video_stream
from repro.network.channel import SimulatedChannel
from repro.network.markov import GilbertModel


@pytest.fixture
def stream():
    return make_video_stream(GOP_12, gop_count=4)


class TestFileSegmentSource:
    def test_windows_consumed_in_order(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.PLAYBACK)
        index0, buffered0 = source.next_window()
        index1, buffered1 = source.next_window()
        assert (index0, index1) == (0, 1)
        assert source.exhausted
        with pytest.raises(PipelineError):
            source.next_window()

    def test_playback_policy_in_order(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.PLAYBACK)
        _, buffered = source.next_window()
        offsets = [f.offset for f in sorted(buffered, key=lambda f: f.priority)]
        assert offsets == list(range(24))

    def test_ibo_policy_anchors_first(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.IBO)
        _, buffered = source.next_window()
        ordered = [f.offset for f in sorted(buffered, key=lambda f: f.priority)]
        anchors = [o for o in range(24) if o % 12 in (0, 3, 6, 9)]
        assert ordered[: len(anchors)] == anchors

    def test_layered_policy_covers_all(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.LAYERED_CPO)
        _, buffered = source.next_window()
        assert sorted(f.offset for f in buffered) == list(range(24))

    def test_layered_policy_i_frames_first(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.LAYERED_CPO)
        _, buffered = source.next_window()
        ordered = [f.offset for f in sorted(buffered, key=lambda f: f.priority)]
        assert set(ordered[:2]) == {0, 12}

    def test_independent_stream_supported(self):
        stream = make_independent_stream(20)
        source = FileSegmentSource(stream, 10, OrderingPolicy.LAYERED_CPO)
        _, buffered = source.next_window()
        assert len(buffered) == 10

    def test_invalid_window(self, stream):
        with pytest.raises(PipelineError):
            FileSegmentSource(stream, 0)


class TestPacketSource:
    def _channel(self, lossy=False, seed=0):
        model = GilbertModel(p_good=0.5, p_bad=0.5, seed=seed) if lossy else None
        return SimulatedChannel(
            bandwidth_bps=10_000_000, propagation_delay=0.01, loss_model=model
        )

    def test_lossless_delivers_all(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.PLAYBACK)
        _, buffered = source.next_window()
        pkt_src = PacketSource(self._channel())
        outcome = pkt_src.transmit_window(0, buffered, 0.0, 1.0)
        assert all(outcome.values())
        assert pkt_src.frames_sent == 24
        assert pkt_src.frames_dropped == 0

    def test_deadline_drops_tail(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.PLAYBACK)
        _, buffered = source.next_window()
        slow = SimulatedChannel(bandwidth_bps=500_000, propagation_delay=0.01)
        pkt_src = PacketSource(slow)
        outcome = pkt_src.transmit_window(0, buffered, 0.0, 1.0)
        assert pkt_src.frames_dropped > 0
        assert not all(outcome.values())

    def test_invalid_deadline(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.PLAYBACK)
        _, buffered = source.next_window()
        pkt_src = PacketSource(self._channel())
        with pytest.raises(PipelineError):
            pkt_src.transmit_window(0, buffered, 1.0, 1.0)

    def test_retransmission_recovers_anchors(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.LAYERED_CPO)
        _, buffered = source.next_window()
        pkt_src = PacketSource(self._channel(lossy=True, seed=4), nack_delay=0.001)
        outcome = pkt_src.transmit_window(0, buffered, 0.0, 1.0)
        anchors = [o for o in range(24) if o % 12 in (0, 3, 6, 9)]
        assert all(outcome[a] for a in anchors)
        assert pkt_src.retransmissions > 0

    def test_no_retransmission_mode(self, stream):
        source = FileSegmentSource(stream, 24, OrderingPolicy.LAYERED_CPO)
        _, buffered = source.next_window()
        pkt_src = PacketSource(
            self._channel(lossy=True, seed=4), retransmit_anchors=False
        )
        pkt_src.transmit_window(0, buffered, 0.0, 1.0)
        assert pkt_src.retransmissions == 0


class TestClientBuffer:
    def test_all_received_no_loss(self, stream):
        client = ClientBuffer()
        window = stream.window(0, 24)
        playout = client.complete_window(0, window, {o: True for o in range(24)})
        assert playout.clf == 0
        assert playout.unit_losses == 0

    def test_dependency_amplification(self, stream):
        client = ClientBuffer()
        window = stream.window(0, 24)
        outcome = {o: o != 0 for o in range(24)}  # lose I0 only
        playout = client.complete_window(0, window, outcome)
        assert playout.unit_losses >= 12  # whole first GOP undecodable

    def test_playouts_accumulate(self, stream):
        client = ClientBuffer()
        window = stream.window(0, 24)
        client.complete_window(0, window, {o: True for o in range(24)})
        client.complete_window(1, window, {o: True for o in range(24)})
        assert len(client.playouts) == 2
