"""Property tests for the scenario DSL wire format.

Two invariants, mirroring the gateway wire fuzzers: every *valid*
:class:`~repro.scenario.ScenarioSpec` round-trips through JSON exactly
(same frozen dataclasses, same floats), and every *malformed* wire form
— unknown keys, empty phase lists, negative rates, unknown policy
names, type junk — raises :class:`~repro.errors.ConfigurationError`,
never a bare ``KeyError``/``TypeError``/``ValueError``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.markov import GilbertPhase
from repro.scenario import (
    ARRIVALS,
    CORRELATIONS,
    SCHEDULERS,
    ChannelSpec,
    LoadSpec,
    PolicySpec,
    ScenarioSpec,
    from_dict,
    from_json,
    to_dict,
    to_json,
    validate_spec_dict,
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
fractions = probabilities


@st.composite
def gilbert_phases(draw):
    return GilbertPhase(
        packets=draw(st.integers(min_value=1, max_value=100_000)),
        p_good=draw(probabilities),
        p_bad=draw(probabilities),
    )


@st.composite
def scenario_specs(draw):
    return ScenarioSpec(
        name=draw(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1,
                max_size=24,
            )
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        channel=ChannelSpec(
            phases=tuple(
                draw(st.lists(gilbert_phases(), min_size=1, max_size=5))
            ),
            correlation=draw(st.sampled_from(CORRELATIONS)),
        ),
        load=LoadSpec(
            sessions=draw(st.integers(min_value=1, max_value=64)),
            arrival=draw(st.sampled_from(ARRIVALS)),
            mean_interarrival=draw(
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
            flash_fraction=draw(fractions),
            gop_count=draw(st.integers(min_value=1, max_value=32)),
            max_windows=draw(st.integers(min_value=1, max_value=16)),
            high_priority_fraction=draw(fractions),
        ),
        policy=PolicySpec(
            scheduler=draw(st.sampled_from(SCHEDULERS)),
            shedding=draw(st.booleans()),
            admission=draw(st.booleans()),
            capacity_bps=draw(
                st.floats(
                    min_value=1.0,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
        ),
    )


class TestRoundTrip:
    @given(scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_is_exact(self, spec):
        assert from_json(to_json(spec)) == spec

    @given(scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_wire_form_validates(self, spec):
        assert validate_spec_dict(to_dict(spec)) == []

    @given(scenario_specs())
    @settings(max_examples=25, deadline=None)
    def test_serialization_is_canonical(self, spec):
        """Same spec, same bytes: the text is stable across round-trips."""
        text = to_json(spec)
        assert to_json(from_json(text)) == text


def _mutations():
    """(label, mutate) pairs; each turns a valid wire dict invalid."""

    def drop(key):
        def _mutate(data):
            del data[key]

        return _mutate

    def put(path, value):
        def _mutate(data):
            node = data
            for step in path[:-1]:
                node = node[step]
            node[path[-1]] = value

        return _mutate

    return [
        ("missing-name", drop("name")),
        ("missing-channel", drop("channel")),
        ("missing-policy", drop("policy")),
        ("unknown-top-key", put(("intensity",), 11)),
        ("unknown-load-key", put(("load", "bitrate"), 1.0)),
        ("empty-phases", put(("channel", "phases"), [])),
        ("zero-length-phase", put(("channel", "phases", 0, "packets"), 0)),
        ("negative-rate", put(("channel", "phases", 0, "p_bad"), -0.5)),
        ("rate-above-one", put(("channel", "phases", 0, "p_good"), 1.5)),
        ("unknown-correlation", put(("channel", "correlation"), "psychic")),
        ("unknown-arrival", put(("load", "arrival"), "stampede")),
        ("zero-sessions", put(("load", "sessions"), 0)),
        ("float-sessions", put(("load", "sessions"), 2.5)),
        ("negative-gap", put(("load", "mean_interarrival"), -1.0)),
        ("flash-above-one", put(("load", "flash_fraction"), 1.5)),
        ("unknown-scheduler", put(("policy", "scheduler"), "lifo")),
        ("boolean-capacity", put(("policy", "capacity_bps"), True)),
        ("zero-capacity", put(("policy", "capacity_bps"), 0.0)),
        ("string-seed", put(("seed",), "zero")),
        ("wrong-kind", put(("kind",), "repro-run-manifest")),
        ("wrong-schema-version", put(("schema",), 99)),
        ("phases-not-a-list", put(("channel", "phases"), {"packets": 1})),
    ]


@pytest.mark.parametrize(
    "label,mutate", _mutations(), ids=[m[0] for m in _mutations()]
)
def test_mutated_spec_raises_configuration_error(label, mutate):
    data = to_dict(
        ScenarioSpec(
            name="battery",
            channel=ChannelSpec(phases=(GilbertPhase(10, 0.9, 0.5),)),
        )
    )
    mutate(data)
    with pytest.raises(ConfigurationError):
        from_dict(data)


@given(st.text(max_size=200))
@settings(max_examples=100, deadline=None)
def test_junk_text_never_crashes(text):
    """Arbitrary text either parses to a valid spec or raises cleanly."""
    try:
        spec = from_json(text)
    except ConfigurationError:
        return
    assert isinstance(spec, ScenarioSpec)


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**31), max_value=2**31),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_junk_json_values_never_crash(value):
    """Arbitrary JSON values fail validation cleanly, never crash."""
    try:
        from_dict(value)
    except ConfigurationError:
        return
    # The only values that construct are genuine wire forms.
    assert isinstance(value, dict)
    assert validate_spec_dict(value) == []


def test_non_dict_wire_forms_report_one_error():
    assert validate_spec_dict([1, 2]) == ["$: expected object, got list"]
    assert validate_spec_dict(None) == ["$: expected object, got NoneType"]


def test_from_json_rejects_non_string():
    with pytest.raises(ConfigurationError):
        from_json(None)


def test_to_json_matches_plain_dumps():
    spec = ScenarioSpec(
        name="canonical",
        channel=ChannelSpec(phases=(GilbertPhase(5, 0.8, 0.4),)),
    )
    assert json.loads(to_json(spec)) == to_dict(spec)
