"""Differential battery: regime-switching channels across the engines.

Two anchors pin the tentpole:

* **single phase == stationary** — a one-phase ``channel_phases``
  schedule is *bit-for-bit* the plain ``(p_good, p_bad)`` path, on
  every accel backend, both kernel tiers, the batch engine, both
  serving engines (event loop and fast path) and the sharded fan-out.
  Only the config differs, so results are compared with the config
  normalized away.
* **object engine == kernel** — multi-phase schedules run through
  :class:`~repro.core.protocol.ProtocolSession` (the reference
  :class:`~repro.network.markov.SwitchingGilbertModel` duplex) must
  equal :func:`repro.core.kernel.step_window` on both tiers and
  backends, including the fused tier's per-phase-segment prefetch.

This module must keep passing with NumPy absent, so it never imports
it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import accel
from repro.core import kernel
from repro.core.batch import run_sessions_batch
from repro.core.protocol import ProtocolConfig, ProtocolSession, run_session
from repro.media.gop import GOP_12, GopPattern
from repro.media.stream import make_video_stream
from repro.network.markov import GilbertPhase
from repro.scenario import (
    ChannelSpec,
    LoadSpec,
    PolicySpec,
    ScenarioSpec,
    as_load_spec,
    build_requests,
    run_scenario,
)
from repro.serve import loadgen, serve_sessions

#: One phase that never ends within any run here — the stationary
#: special case expressed in the DSL.
_FOREVER = 1_000_000_000


@pytest.fixture(scope="module")
def small_stream():
    return make_video_stream(GopPattern.parse("IBBP"), gop_count=6)


@pytest.fixture(autouse=True)
def _restore_tier():
    previous = kernel.tier_name()
    yield
    kernel.set_tier(previous)


def _single_phase(config: ProtocolConfig) -> ProtocolConfig:
    """The same channel, spelled as a one-phase schedule."""
    return replace(
        config,
        channel_phases=(
            GilbertPhase(_FOREVER, config.p_good, config.p_bad),
        ),
    )


def _strip(result, reference):
    """Normalize the config away (the only field allowed to differ)."""
    return replace(result, config=reference.config)


def _each_backend():
    previous = accel.backend_name()
    try:
        for name in accel.available_backends():
            accel.set_backend(name)
            yield name
    finally:
        accel.set_backend(previous)


class TestSinglePhaseIsStationary:
    @pytest.mark.parametrize("seed", [0, 7, 2000])
    def test_run_session_every_backend_and_tier(self, small_stream, seed):
        config = ProtocolConfig(gop_size=4, seed=seed)
        phased = _single_phase(config)
        for backend in _each_backend():
            for tier in kernel.available_tiers():
                kernel.set_tier(tier)
                expected = run_session(small_stream, config, max_windows=3)
                actual = run_session(small_stream, phased, max_windows=3)
                assert _strip(actual, expected) == expected, (
                    f"backend {backend!r} tier {tier!r} diverged"
                )

    def test_batch_engine(self, small_stream):
        config = ProtocolConfig(gop_size=4, p_good=0.9, p_bad=0.5)
        seeds = [0, 7919, 15838]
        expected = run_sessions_batch(
            small_stream, config, seeds=seeds, max_windows=3
        )
        actual = run_sessions_batch(
            small_stream, _single_phase(config), seeds=seeds, max_windows=3
        )
        assert [_strip(a, e) for a, e in zip(actual, expected)] == expected

    def test_lossy_feedback_channel(self, small_stream):
        """The phased feedback channel (per-ACK lookups) stays pinned."""
        config = ProtocolConfig(
            gop_size=4, lossy_feedback=True, p_bad=0.7, seed=31
        )
        expected = run_session(small_stream, config, max_windows=4)
        actual = run_session(
            small_stream, _single_phase(config), max_windows=4
        )
        assert actual.acks_lost == expected.acks_lost
        assert _strip(actual, expected) == expected


def _scenario(seed=0, sessions=3, arrival="batch", correlation="independent"):
    return ScenarioSpec(
        name="diff",
        seed=seed,
        channel=ChannelSpec(
            phases=(GilbertPhase(_FOREVER, 0.92, 0.6),),
            correlation=correlation,
        ),
        load=LoadSpec(
            sessions=sessions, arrival=arrival, gop_count=4, max_windows=3
        ),
        policy=PolicySpec(capacity_bps=4_000_000.0),
    )


def _outcome_key(outcome):
    """Everything an outcome carries, minus the phase-bearing configs."""
    result = outcome.result
    return (
        outcome.request.session_id,
        outcome.admitted,
        outcome.reason,
        outcome.shed_frames,
        outcome.share_bps,
        outcome.min_share_bps,
        outcome.demand_bps,
        outcome.critical_bps,
        None
        if result is None
        else replace(
            result, config=replace(result.config, channel_phases=None)
        ),
    )


def _stationary_requests(spec: ScenarioSpec):
    """The equivalent plain-loadgen fleet (no channel_phases anywhere)."""
    plain = as_load_spec(spec)
    return loadgen.generate_requests(
        replace(plain, config=ProtocolConfig())
    )


class TestServingParity:
    @pytest.mark.parametrize("fast", [False, True])
    def test_single_phase_scenario_equals_plain_loadgen(self, fast):
        spec = _scenario()
        expected = serve_sessions(
            _stationary_requests(spec),
            spec.policy.capacity_bps,
            fast=fast,
        )
        actual = run_scenario(spec, fast=fast)
        assert list(map(_outcome_key, actual.outcomes)) == list(
            map(_outcome_key, expected.outcomes)
        )

    def test_fast_path_matches_event_loop_multi_phase(self):
        """The serving fast path stays pinned *with* a real switch."""
        spec = replace(
            _scenario(seed=3, sessions=4),
            channel=ChannelSpec(
                phases=(
                    GilbertPhase(40, 0.99, 0.3),
                    GilbertPhase(_FOREVER, 0.85, 0.75),
                ),
            ),
        )
        slow = run_scenario(spec, fast=False)
        fast = run_scenario(spec, fast=True)
        assert [o.result for o in fast.outcomes] == [
            o.result for o in slow.outcomes
        ]

    def test_run_sharded_single_phase(self):
        from repro.serve.fastpath import run_sharded

        spec = _scenario(seed=1, sessions=4)
        expected = run_sharded(
            replace(as_load_spec(spec), config=ProtocolConfig()),
            spec.policy.capacity_bps,
            shards=2,
        )
        actual = run_scenario(spec, shards=2)
        for shard_a, shard_e in zip(actual.shards, expected.shards):
            assert list(map(_outcome_key, shard_a.outcomes)) == list(
                map(_outcome_key, shard_e.outcomes)
            )

    def test_hierarchy_matches_flat_fanout_multi_phase(self):
        """The hierarchical fan-out inherits phased channels through
        `step_fleet`'s schedule-keyed refill; it must equal the flat
        sharded fan-out with a real switch in play."""
        from repro.serve.fastpath import run_sharded
        from repro.serve.hierarchy import run_hierarchy

        spec = replace(
            _scenario(seed=2, sessions=6),
            channel=ChannelSpec(
                phases=(
                    GilbertPhase(40, 0.99, 0.3),
                    GilbertPhase(_FOREVER, 0.85, 0.75),
                ),
            ),
            policy=PolicySpec(capacity_bps=8_000_000.0),
        )
        load = as_load_spec(spec)
        flat = run_sharded(load, spec.policy.capacity_bps, shards=2)
        tree = run_hierarchy(
            load, spec.policy.capacity_bps, shards=2, workers=2
        )
        flat_keys = sorted(
            (
                o.request.session_id,
                o.admitted,
                o.shed_frames,
                None if o.result is None else o.result.mean_clf,
                None if o.result is None else o.result.stream_clf,
            )
            for shard in flat.shards
            for o in shard.outcomes
        )
        tree_keys = sorted(
            (
                o.request.session_id,
                o.admitted,
                o.shed_frames,
                None if o.result is None else o.result.mean_clf,
                None if o.result is None else o.result.stream_clf,
            )
            for o in tree.outcomes
        )
        assert tree_keys == flat_keys

    def test_flash_crowd_decoration_only_moves_arrivals(self):
        """Flash arrivals change *when* sessions show up, nothing else."""
        spec = _scenario(arrival="flash", sessions=4)
        flash = build_requests(spec)
        poisson = build_requests(replace(spec, load=replace(spec.load, arrival="poisson")))
        assert [r.arrival_time for r in flash[:2]] == [0.0, 0.0]
        assert [r.config for r in flash] == [r.config for r in poisson]
        assert [r.stream for r in flash] == [r.stream for r in poisson]

    def test_shared_correlation_replays_one_loss_process(self):
        """`shared` pins every forward channel to one seeded process."""
        spec = _scenario(correlation="shared", sessions=3)
        requests = build_requests(spec)
        seeds = {r.config.seed for r in requests}
        assert len(seeds) == 1
        independent = build_requests(
            replace(
                spec,
                channel=replace(spec.channel, correlation="independent"),
            )
        )
        assert len({r.config.seed for r in independent}) == len(independent)


class TestMultiPhaseObjectVsKernel:
    PHASES = (
        GilbertPhase(25, 0.99, 0.2),
        GilbertPhase(40, 0.7, 0.8),
        GilbertPhase(_FOREVER, 0.92, 0.6),
    )

    @pytest.mark.parametrize("seed", [0, 11, 4242])
    def test_every_backend_and_tier(self, small_stream, seed):
        config = ProtocolConfig(
            gop_size=4, channel_phases=self.PHASES, seed=seed
        )
        for backend in _each_backend():
            expected = ProtocolSession(small_stream, config).run(
                max_windows=4
            )
            for tier in kernel.available_tiers():
                kernel.set_tier(tier)
                actual = run_session(small_stream, config, max_windows=4)
                assert actual == expected, (
                    f"backend {backend!r} tier {tier!r} diverged"
                )

    def test_mixed_schedule_slab_matches_solo_rows(self):
        """Batches with *different* schedules advancing through one
        ``step_fleet`` slab equal each row run alone — the slab-wide
        refill keys its draw groups on the full channel dynamics, so a
        stationary batch and a phased batch sharing ``(p_good, p_bad)``
        never share a stacked prefetch."""
        stream = make_video_stream(GOP_12, gop_count=4)
        configs = [
            ProtocolConfig(seed=5),
            ProtocolConfig(channel_phases=self.PHASES, seed=5),
            # Same stationary parameters as configs[0], spelled as one
            # phase: identical (p_good, p_bad) but a distinct group.
            ProtocolConfig(
                channel_phases=(GilbertPhase(_FOREVER, 0.92, 0.6),), seed=9
            ),
        ]
        solo = [
            run_session(stream, config, max_windows=3) for config in configs
        ]
        windows = list(stream.windows(configs[0].window_frames))[:3]
        shapes: dict = {}
        rows = [
            kernel.SessionRow(config, config.seed) for config in configs
        ]
        for index, window in enumerate(windows):
            batches = [
                kernel.FleetBatch(
                    rows=[row],
                    info=kernel.WindowInfo(window, config, stream.fps, shapes),
                    config=config,
                    fps=stream.fps,
                    window_index=index,
                    control_serialization=(
                        kernel.CONTROL_PACKET_BYTES
                        * 8.0
                        / config.bandwidth_bps
                    ),
                )
                for row, config in zip(rows, configs)
            ]
            kernel.step_fleet(batches)
        assert [row.result for row in rows] == solo
