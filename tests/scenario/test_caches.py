"""Plan caches must key on channel dynamics, not just (p_good, p_bad).

Two scenarios differing *only* in their phase schedule must never
share a cached admission plan, shape cache or stacked prefetch — the
satellite pin of the scenario PR.  The demand cache is observed through
its own counters; the fast path and slab refill are pinned
behaviourally (a mixed stationary + phased fleet equals each fleet
served alone).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import obs
from repro.core.protocol import ProtocolConfig
from repro.media.gop import GOP_12
from repro.media.stream import make_video_stream
from repro.network.markov import GilbertPhase
from repro.serve import SessionRequest, serve_sessions
from repro.serve.admission import estimate_demand

_FOREVER = 1_000_000_000

PHASED = (
    GilbertPhase(30, 0.99, 0.3),
    GilbertPhase(_FOREVER, 0.85, 0.75),
)


@pytest.fixture()
def metrics():
    registry = obs.enable()
    obs.reset()
    yield registry
    obs.disable()


class TestDemandCache:
    def test_phase_schedules_never_share_entries(self, metrics):
        """Same stream, same windowing — a different phase schedule is
        a cache miss, then its own hit."""
        # A geometry no other test uses, so the module-global LRU has
        # no warm entry for it.
        stream = make_video_stream(GOP_12, gop_count=9, name="cache-pin")
        base = ProtocolConfig()
        phased = replace(base, channel_phases=PHASED)
        other = replace(
            base, channel_phases=(GilbertPhase(_FOREVER, 0.92, 0.6),)
        )
        misses = obs.counter("serve.demand_cache.misses")
        hits = obs.counter("serve.demand_cache.hits")

        first = estimate_demand(stream, base, max_windows=4)
        assert misses.snapshot() == 1
        assert estimate_demand(stream, base, max_windows=4) == first
        assert hits.snapshot() == 1

        # New dynamics: a miss even though stream and windowing match.
        assert estimate_demand(stream, phased, max_windows=4) == first
        assert misses.snapshot() == 2
        # ...and a third schedule is a third entry.
        assert estimate_demand(stream, other, max_windows=4) == first
        assert misses.snapshot() == 3

        # Each schedule hits its own entry afterwards.
        estimate_demand(stream, phased, max_windows=4)
        estimate_demand(stream, other, max_windows=4)
        assert hits.snapshot() == 3
        assert misses.snapshot() == 3


class TestMixedFleetIsolation:
    def test_mixed_dynamics_fleet_equals_solo_serving(self):
        """Serving stationary and phased sessions *together* changes
        nothing: the fast path's shape caches and the slab prefetch
        key on the full channel dynamics."""
        stream = make_video_stream(GOP_12, gop_count=4)
        configs = {
            "stationary": ProtocolConfig(seed=5),
            "phased": ProtocolConfig(channel_phases=PHASED, seed=5),
            # Same (p_good, p_bad) as stationary, spelled as one phase:
            # the adversarial case for a (p_good, p_bad)-keyed cache.
            "single": ProtocolConfig(
                channel_phases=(GilbertPhase(_FOREVER, 0.92, 0.6),), seed=5
            ),
        }
        requests = [
            SessionRequest(
                session_id=name, stream=stream, config=config, max_windows=3
            )
            for name, config in configs.items()
        ]
        capacity = 3 * ProtocolConfig().bandwidth_bps
        for fast in (False, True):
            mixed = serve_sessions(requests, capacity, fast=fast)
            for request in requests:
                (solo,) = serve_sessions(
                    [request], ProtocolConfig().bandwidth_bps, fast=fast
                ).outcomes
                together = next(
                    o
                    for o in mixed.outcomes
                    if o.request.session_id == request.session_id
                )
                assert together.result == solo.result, (
                    f"{request.session_id} diverged (fast={fast})"
                )
