"""The scenario-matrix experiment and its committed manifest.

The committed ``manifests/scenario_matrix.json`` is the repo's record
of the Equation-1 estimator's tracking lag under regime switches; these
tests pin that re-running the default profile reproduces its summary
byte for byte, that the smoke profile's shape holds on the pure
backend, and that the experiment is wired into the registry and the
``repro scenario`` CLI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import accel
from repro.experiments.runner import available_experiments, run_experiment
from repro.experiments.scenario import (
    default_matrix_config,
    run_scenario_matrix,
    smoke_config,
)

MANIFEST = Path(__file__).resolve().parents[2] / "manifests" / "scenario_matrix.json"


class TestMatrix:
    def test_smoke_profile_shape_holds(self):
        result = run_scenario_matrix(smoke_config(0))
        assert result.shape_holds
        assert {arm.kind for arm in result.arms} == {
            "control",
            "step_up",
            "step_down",
        }

    def test_step_up_pays_and_step_down_recovers(self):
        result = run_scenario_matrix(smoke_config(0))
        up = result.arm("mild-to-harsh")
        down = result.arm("harsh-to-mild")
        assert up.clf_penalty > 0
        assert up.post_bhat > up.pre_bhat
        assert down.clf_penalty < 0
        assert down.post_bhat < down.pre_bhat

    def test_summary_is_deterministic(self):
        first = run_scenario_matrix(smoke_config(3)).summary_dict()
        second = run_scenario_matrix(smoke_config(3)).summary_dict()
        assert first == second

    def test_summary_is_backend_invariant(self):
        """The matrix rides the batch engine, so its numbers are pinned
        across accel backends (the kernel parity contract)."""
        previous = accel.backend_name()
        summaries = {}
        try:
            for name in accel.available_backends():
                accel.set_backend(name)
                summaries[name] = run_scenario_matrix(
                    smoke_config(0)
                ).summary_dict()
        finally:
            accel.set_backend(previous)
        reference = next(iter(summaries.values()))
        assert all(summary == reference for summary in summaries.values())

    def test_replications_override(self):
        result = run_scenario_matrix(smoke_config(0), replications=2)
        assert result.config.rows == 2

    def test_render_mentions_verdict(self):
        rendered = run_scenario_matrix(smoke_config(0)).render()
        assert "HOLDS" in rendered or "VIOLATED" in rendered


class TestRegistry:
    def test_scenario_is_registered(self):
        assert "scenario" in available_experiments()

    def test_run_experiment_reports_shape(self):
        rendered, shape = run_experiment("scenario", replications=2)
        assert "scenario matrix" in rendered
        assert shape is not None


class TestCommittedManifest:
    def test_manifest_validates_against_schema(self):
        from repro.obs.manifest import validate_manifest

        manifest = json.loads(MANIFEST.read_text(encoding="utf-8"))
        assert validate_manifest(manifest, None) == []

    def test_default_profile_reproduces_committed_summary(self):
        """`repro scenario --out manifests/scenario_matrix.json` is a
        no-op modulo timing: the summary regenerates byte for byte."""
        manifest = json.loads(MANIFEST.read_text(encoding="utf-8"))
        result = run_scenario_matrix(default_matrix_config(manifest["seed"]))
        # Round-trip through JSON so committed floats compare against
        # serialized floats, not Python objects.
        regenerated = json.loads(json.dumps(result.summary_dict()))
        assert regenerated == manifest["summary"]
        assert manifest["shape_holds"] is True
        assert manifest["experiment"] == "scenario"


class TestCli:
    def test_scenario_command_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "scenario.json"
        code = main(
            ["scenario", "--smoke", "--out", str(out_path)]
        )
        assert code == 0
        assert "scenario matrix" in capsys.readouterr().out
        manifest = json.loads(out_path.read_text(encoding="utf-8"))
        assert manifest["summary"]["shape_holds"] is True

    def test_scenario_emit_then_run(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        assert main(["scenario", "emit", "--out", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(["scenario", "run", str(spec_path)]) == 0
        assert "flash-regime-switch" in capsys.readouterr().out

    def test_scenario_run_rejects_junk_spec(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "nope"}', encoding="utf-8")
        assert main(["scenario", "run", str(bad)]) == 2

    @pytest.mark.parametrize("missing", ["/nonexistent/spec.json"])
    def test_scenario_run_missing_file(self, missing, capsys):
        from repro.cli import main

        assert main(["scenario", "run", missing]) == 2
