.PHONY: install test bench bench-batch bench-serve bench-kernel bench-native bench-hierarchy bench-trend bench-all profile profile-serve profile-kernel profile-native profile-hierarchy experiments examples serve-demo gateway-demo obs-demo obs-guard capacity-plan lint all

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

install:
	pip install -e . --no-build-isolation || \
	  (echo "editable install unavailable; falling back to .pth" && \
	   echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth")

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) tools/bench_compare.py

bench-batch:
	$(PYTHON) tools/bench_compare.py --bench-path benchmarks/test_bench_batch.py --tag batch

bench-serve:
	$(PYTHON) tools/bench_compare.py --bench-path benchmarks/test_bench_serve_fastpath.py --tag serve

bench-kernel:
	$(PYTHON) tools/bench_compare.py --bench-path benchmarks/test_bench_kernel.py --tag kernel

bench-native:
	$(PYTHON) tools/bench_compare.py --bench-path benchmarks/test_bench_native.py --tag native

bench-hierarchy:
	$(PYTHON) tools/bench_compare.py --bench-path benchmarks/test_bench_hierarchy.py --tag hierarchy

# Per-tag mean-time trajectory across all committed BENCH_*.json
# recordings; fails on a >10% newest-vs-previous regression.
bench-trend:
	$(PYTHON) tools/bench_trend.py

bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

profile:
	$(PYTHON) tools/profile_hotpath.py

profile-serve:
	$(PYTHON) tools/profile_hotpath.py --target serve

profile-kernel:
	$(PYTHON) tools/profile_hotpath.py --target kernel

profile-native:
	$(PYTHON) tools/profile_hotpath.py --target kernel --tier native

profile-hierarchy:
	$(PYTHON) tools/profile_hotpath.py --target hierarchy

experiments:
	$(PYTHON) -m repro experiments

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) "$$f"; done

serve-demo:
	$(PYTHON) -m repro serve --sessions 6 --capacity-mbps 2.4 --seed 5

# A seeded loopback pair over real UDP: prints the live per-window
# CLF/ALF/b-hat trajectory and the differential verdict vs the simulator.
gateway-demo:
	$(PYTHON) -m repro gateway probe --seed 7
	$(PYTHON) -m repro gateway probe --seed 11 --reorder-span 5

obs-demo:
	$(PYTHON) -m repro obs dump figure8-pooled --quiet

obs-guard:
	$(PYTHON) tools/obs_overhead_guard.py --repeats 15

# Regenerate the committed capacity-planning manifest (seed-pinned; only
# wall timings move between machines).
capacity-plan:
	$(PYTHON) -m repro serve plan --seed 0 --out manifests/capacity_plan.json

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
	  $(PYTHON) -m ruff check . && $(PYTHON) -m ruff format --check .; \
	elif command -v ruff >/dev/null 2>&1; then \
	  ruff check . && ruff format --check .; \
	else \
	  echo "ruff is not installed; skipping lint (CI runs it)"; \
	fi

all: test lint bench
