.PHONY: install test bench bench-all experiments examples lint all

PYTHON ?= python

install:
	pip install -e . --no-build-isolation || \
	  (echo "editable install unavailable; falling back to .pth" && \
	   echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth")

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) tools/bench_compare.py

bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro experiments

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) "$$f"; done

all: test bench
